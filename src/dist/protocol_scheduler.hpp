// The full two-phase algorithm as a message-level protocol (paper,
// Section 5 "Distributed Implementation", generalized to the Section 6
// wide/narrow split and the non-uniform-bandwidth rules).
//
// In the real distributed setting no processor can test a global
// condition ("is some instance still unsatisfied?"), so *every* schedule
// length is fixed up front from globally known quantities:
//   epochs           = l_max (groups of the layered plan),
//   stages_per_epoch = ceil(log_xi eps)            (Section 5/6),
//   steps_per_stage  = O(log(pmax/pmin))           (Lemma 5.1/Claim 5.2),
//   luby_budget      = O(log n) Luby iterations    (w.h.p. termination).
// xi is derived per *pass* from the raising rule and the pass's observed
// (Delta, h_min) through derive_stage_params — the same derivation the
// modeled engine's prepare() uses, so the two cannot drift.
//
// Nothing in the run is global anymore:
//  - neighborhoods are learned by the 2-round edge-owner rendezvous of
//    dist/discovery.hpp (no ConflictGraph is materialized);
//  - the dual state is sharded per processor (framework/dual_shard.hpp):
//    a raise is applied to the winner's own shard and propagated to its
//    conflicting neighbors via kTagRaise messages, which the receivers
//    *apply* — every satisfaction test reads only the local shard.  The
//    kTagRaise payload carries the per-critical-edge increments exactly
//    as RaiseRule::tight_raise computed them, i.e. capacity-normalized
//    (delta/c(e) under kUnit) when capacity_aware_raises is on — the
//    non-uniform profiles of src/capacity work end-to-end on the wire.
//
// A *pass* runs one raising rule over one instance class on fresh dual
// shards.  run_distributed_protocol executes a single pass under
// ProtocolOptions::rule; run_height_split_protocol executes the
// Section 6 two-pass schedule — wide instances (h > 1/2) under kUnit,
// the rest under kNarrow, each pass with its own fixed
// (epochs, stages, steps) budget — and combines the two pruned
// sub-solutions by the per-network better-of rule of Theorem 6.3,
// exactly as the modeled solve_height_split does.
//
// Every (epoch, stage, step) tuple spends exactly 2*luby_budget rounds of
// Luby protocol plus 1 dual-propagation round, whether or not any work
// remains — idle processors execute the rounds in silence.  Phase 2
// replays the tuples in reverse, 1 round each (keep/drop notification).
// A two-pass run additionally charges the per-network better-of
// combination an honest converge-cast (better_of_convergecast_rounds in
// framework/two_phase.hpp: the profit totals cast up each tree, the
// verdict broadcasts back — O(depth) rounds, zero when only one class
// ran).  Hence the exact accounting identity the tests assert, per pass
// and in total:
//   rounds = discovery_rounds
//          + sum_pass [ tuples_pass * (2*luby_budget + 1) + tuples_pass ]
//          + combine_rounds,
//   tuples_pass = epochs * stages_per_epoch(pass) * steps_per_stage.
// Discovery runs once; the passes share the discovered neighborhoods.
//
// mis_ok reports whether every Luby computation decided all of its
// participants within the fixed budget; schedule_ok whether every stage's
// step budget left no unsatisfied instance behind (Lemma 5.1's
// prediction).  Both hold w.h.p.; the run remains feasible regardless.
//
// The whole pipeline is held to *exact* (==) equality against the
// modeled engine — lockstep TwoPhaseEngine runs driven by the
// ProtocolLubyMis mirror oracle — by tests/test_protocol_parity.cpp:
// selected set, raise stack, per-instance final LHS (also against a
// central DualState replay) and lambda, bit for bit.  To that end every
// satisfaction test and slack computation reads the shard through
// lhs_ordered (the ascending-edge beta walk), the float-for-float
// operation order of the central DualState.
#pragma once

#include <cstdint>
#include <vector>

#include "decomp/layered.hpp"
#include "dist/transport.hpp"
#include "framework/raise_rule.hpp"
#include "model/problem.hpp"
#include "model/solution.hpp"

namespace treesched {

struct ProtocolOptions {
  double epsilon = 0.1;  // target slackness 1-eps
  std::uint64_t seed = 1;
  // Raising rule of the single-pass run (run_distributed_protocol).  The
  // two-pass wide/narrow schedule ignores it and uses kUnit + kNarrow.
  RaiseRuleKind rule = RaiseRuleKind::kUnit;
  // Capacity-aware increments (DESIGN.md Sec. 6) on the wire; false ships
  // the paper's uniform increments verbatim (the bench_t5 "naive" arm).
  bool capacity_aware_raises = true;
  // Extra steps on top of the Lemma 5.1 stage budget (matches
  // SolverConfig::lockstep_slack of the modeled engine).
  int lockstep_slack = 2;
  // Luby iterations per MIS computation; 0 derives default_luby_budget(n).
  int luby_budget = 0;
  // Retain the per-pass raise stacks in the result (test oracle for the
  // central-replay and engine parity checks).
  bool keep_stack = false;
  // Communication backend of the run (dist/transport.hpp).  Every
  // backend produces bit-identical results and counters; kDefault
  // resolves through the TREESCHED_TRANSPORT environment hook.
  TransportKind transport = TransportKind::kDefault;
  // Fault injection: a non-empty plan wraps the transport in the kFaulty
  // recovery layer (checksummed, sequence-numbered frames with bounded
  // in-barrier retransmit — see dist/transport.hpp).  Whenever the
  // recovery layer masks the plan, the run's results are bit-identical
  // to the fault-free run; when the retransmit budget exhausts, the run
  // is flagged degraded and its certificate is re-validated centrally.
  FaultPlan faults;
  // Adaptive MIS budget retry bound: a step whose fixed Luby budget
  // leaves undecided participants re-runs with the budget doubled per
  // attempt, up to this many attempts (0 = old silent-degrade
  // behavior).  Must equal the mirror oracle's default
  // (kDefaultMisMaxRetries in dist/luby_mis.hpp, asserted there) or the
  // lockstep parity with the modeled engine breaks.
  int mis_max_retries = 2;
};

// One executed pass of the protocol: a raising rule over an instance
// class, on fresh dual shards, under its own fixed schedule.
struct ProtocolPass {
  RaiseRuleKind rule = RaiseRuleKind::kUnit;
  int instances = 0;  // pass members (the active instance class)
  // The fixed schedule of this pass.
  int epochs = 0;
  int stages_per_epoch = 0;
  int steps_per_stage = 0;
  int delta = 0;     // observed max |pi(d)| over the pass members
  double h_min = 1.0;
  double xi = 0.0;
  // Round accounting of this pass alone (identity:
  // rounds = tuples * (2*luby_budget + 1) + tuples + mis_retry_rounds).
  std::int64_t tuples = 0;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  // Budget sufficiency (w.h.p. guarantees, observed).
  bool mis_ok = true;
  bool schedule_ok = true;
  // Adaptive MIS budget retries: attempts entered (one per starved step
  // per doubling) and the extra rounds their executed iterations cost —
  // the adaptive part of the otherwise-fixed schedule, broken out so the
  // round identity above stays exact.  Matches the modeled engine's
  // SolveStats::mis_retries in lockstep (compared with ==).
  std::int64_t mis_retries = 0;
  std::int64_t mis_retry_rounds = 0;
  // Degraded-mode contract: degraded is true iff the transport's
  // recovery layer lost a frame by the end of this pass (monotone across
  // a run's passes).  On a degraded pass the shard-reported certificate
  // (final_lhs, lambda_observed) is re-validated against a central
  // replay of the actually-applied raise amounts — certificate_ok says
  // the reported values are conservative (shard LHS can only
  // *undercount* under loss, so lambda stays a valid slackness bound).
  bool degraded = false;
  bool certificate_ok = true;
  // min LHS/p over the pass members (the pass's certified slackness).
  double lambda_observed = 1.0;
  // Phase-2 prune of this pass's stack (pre-combination).
  Solution solution;
  // Per-instance final dual LHS as the shards see it — all instances,
  // not just pass members: bystander shards apply incoming raises too,
  // so the whole vector must match a central DualState replay of the
  // pass's raise stack (and does, exactly).
  std::vector<double> final_lhs;
  // One entry per *raising* phase-1 step in raise order (idle tuples
  // contribute no entry, matching the modeled engine's stack exactly);
  // only when keep_stack.
  std::vector<std::vector<InstanceId>> raise_stack;
};

struct ProtocolRunResult {
  Solution solution;
  // The fixed schedule of a single-pass run (mirrors passes[0]; for a
  // two-pass run stages_per_epoch differs per pass and is left 0 here).
  int epochs = 0;
  int stages_per_epoch = 0;
  int steps_per_stage = 0;
  int luby_budget = 0;
  // Runtime accounting (totals include the discovery share, which is
  // also broken out; see dist/discovery.hpp for the registration/reply
  // byte split).
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t discovery_rounds = 0;
  std::int64_t discovery_messages = 0;
  std::int64_t discovery_bytes = 0;
  std::int64_t discovery_registration_bytes = 0;
  std::int64_t discovery_reply_bytes = 0;
  // Rounds charged to the per-network better-of combination of a
  // two-pass run (better_of_convergecast_rounds: each network
  // converge-casts the two profit totals and broadcasts the winner,
  // O(depth) rounds).  Zero when fewer than two passes ran; included in
  // `rounds`, so the whole-run identity is
  //   rounds = discovery_rounds + sum_pass pass.rounds + combine_rounds.
  std::int64_t combine_rounds = 0;
  // Budget sufficiency over all passes (AND).
  bool mis_ok = true;
  bool schedule_ok = true;
  // Merged slackness over the passes (min, as SolveStats::merge takes it).
  double lambda_observed = 0.0;
  // Single-pass conveniences mirroring passes[0] (kept for the existing
  // oracles; empty/unset on a two-pass run, use passes[] there).
  std::vector<double> final_lhs;
  std::vector<std::vector<InstanceId>> raise_stack;
  // One entry per executed pass (an instance class with no members is
  // skipped and contributes no pass, like the modeled height split).
  std::vector<ProtocolPass> passes;
  // The resolved transport backend the run executed on, and its codec
  // hit counters: 0/0 on the in-proc path; both == messages on the
  // serialized wires (every message the run charged was really encoded
  // at post and decoded at drain — the transport-axis tests assert it).
  TransportKind transport = TransportKind::kInProc;
  std::int64_t codec_encoded = 0;
  std::int64_t codec_decoded = 0;
  // Adaptive MIS retries over all passes (sum).
  std::int64_t mis_retries = 0;
  // Fault/recovery observability (kFaulty backend only; zero/false
  // elsewhere).  degraded: some frame exhausted the retransmit budget —
  // the solution is a partial result (still primal-feasible by phase-2
  // construction).  certificate_ok: every degraded pass's reported
  // certificate validated against the central replay (AND over passes;
  // true when nothing degraded).
  FaultStats fault;
  bool degraded = false;
  bool certificate_ok = true;
};

// Runs the message-level protocol on `problem` under `plan` (tree or line
// layered plan) as a single pass with options.rule.  The quality
// guarantee needs the rule to match the instance class (kUnit: unit
// heights or all-wide; kNarrow: all-narrow), while feasibility holds for
// any input by phase-2 construction.
ProtocolRunResult run_distributed_protocol(const Problem& problem,
                                           const LayeredPlan& plan,
                                           const ProtocolOptions& options = {});

// The Section 6 two-pass schedule (Theorem 6.3): wide instances under
// kUnit, narrow under kNarrow, per-network better-of combination.
ProtocolRunResult run_height_split_protocol(
    const Problem& problem, const LayeredPlan& plan,
    const ProtocolOptions& options = {});

}  // namespace treesched
