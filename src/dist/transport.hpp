// The communication backend of the synchronous runtime (dist/runtime.hpp).
//
// The paper's protocols only ever touch three communication primitives:
// post a message during the open round, flush at the round boundary, and
// drain a node's inbox of everything delivered by past boundaries.  The
// Transport interface is exactly those three calls; Runtime stays the
// round-discipline shell (connect/step/round and the message/byte
// accounting the theorems bound) and delegates the message movement to a
// pluggable backend:
//
//   kInProc              the original single-process path: posted
//                        Messages move between std::vectors, nothing is
//                        serialized.  Bytes are *modeled* (counted, not
//                        produced).  Default.
//   kSerialized          every Message is encoded into its destination's
//                        byte buffer at post time and decoded at drain
//                        time — the byte counters become real serialized
//                        sizes (the encoding is exactly the modeled
//                        16-byte header + 8 bytes per double).  Buffers
//                        are reused across rounds; the per-message
//                        encode/decode hits are counted so tests can
//                        assert every message really crossed the codec.
//   kThreadedSerialized  the serialized wire with each destination's
//                        staging queue behind its own mutex: post() is
//                        safe from concurrent threads between round
//                        boundaries, and distinct nodes' delivered
//                        buffers may be drained concurrently.  step()
//                        remains the single driver-side barrier.
//
// All backends are observationally identical: same delivery order (per
// destination, posting order), same round/message/byte counts — the
// parity suites hold them to exact (==) agreement.  A future socket/MPI
// backend implements this same interface; the codec below is its wire
// format.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/prelude.hpp"

namespace treesched {

// One protocol message.  `data` is the payload; the paper's messages
// carry O(1) demand records, so a handful of doubles suffices.
struct Message {
  int from = -1;
  int to = -1;
  int tag = 0;
  std::vector<double> data;
};

// The modeled message cost charged by the accounting (and produced,
// byte for byte, by the serialized codec): a 16-byte header
// (from, to, tag, length) plus 8 bytes per payload double.
inline std::int64_t message_wire_bytes(const Message& m) {
  return 16 + 8 * static_cast<std::int64_t>(m.data.size());
}

enum class TransportKind {
  kDefault,  // resolve via TREESCHED_TRANSPORT (unset -> kInProc)
  kInProc,
  kSerialized,
  kThreadedSerialized,
};

const char* to_string(TransportKind kind);
// "inproc" | "serialized" | "threaded" (alias "threaded-serialized");
// throws std::invalid_argument on anything else (user-facing flags).
TransportKind parse_transport_kind(const std::string& name);
// Resolves kDefault through the TREESCHED_TRANSPORT environment variable
// (read once per process, same env-hook pattern as TREESCHED_TRACE in
// the parity suites); other kinds pass through unchanged.  Unset or
// empty means kInProc.
TransportKind resolve_transport_kind(TransportKind kind);

// --- Message codec ---------------------------------------------------------
//
// Wire format (host byte order; the format of the serialized backends
// and of any future out-of-process backend):
//   int32 from | int32 to | int32 tag | int32 count | count x double
// 16 + 8*count bytes per message — identical to the modeled charge, so
// the byte counters mean the same thing on every backend.

// Appends the encoding of `m` to `out`; returns the bytes appended
// (always message_wire_bytes(m)).
std::size_t encode_message(const Message& m, std::vector<std::uint8_t>& out);

// Decodes one message from buf[offset...], advancing `offset` past it
// and reusing `out`'s payload capacity.  On any malformed input —
// truncated header, negative or impossible payload length, negative
// endpoints — returns false with `offset` untouched and a diagnostic in
// *error (when non-null).  Never reads past buf and never UB's on
// garbage: the codec fuzz arm in tests/test_fuzz.cpp feeds it random
// and truncated buffers under the sanitizers.
bool decode_message(std::span<const std::uint8_t> buf, std::size_t& offset,
                    Message& out, std::string* error = nullptr);

// --- The backend interface -------------------------------------------------

class Transport {
 public:
  virtual ~Transport() = default;

  // Queues `m` for delivery at the next flush().  Validation (channel
  // open, endpoints in range) and accounting happen in Runtime before
  // the call; the backend only moves the message.
  virtual void post(Message m) = 0;

  // Round boundary: everything posted since the previous flush() becomes
  // drainable at its destination.  Driver-side only, on every backend.
  virtual void flush() = 0;

  // Fills `out` with node's delivered-but-undrained messages, in posting
  // order, and empties the inbox.  `out` arrives in an arbitrary
  // recycled state (it may still hold stale messages from a previous
  // drain — see Runtime::recycle); the backend must leave it holding
  // exactly the delivered messages, reusing its capacity where it can.
  virtual void drain(int node, std::vector<Message>& out) = 0;

  virtual TransportKind kind() const = 0;
  // Name of the per-round trace span ("round", "round.serialized", ...)
  // — a string literal, as the recorder requires.
  virtual const char* round_span_name() const = 0;

  // Codec hit counters: messages that crossed encode_message /
  // decode_message.  Zero on the in-proc path; equal to messages_sent on
  // the serialized paths once every inbox is drained (asserted by the
  // transport-axis tests).
  virtual std::int64_t codec_encoded() const { return 0; }
  virtual std::int64_t codec_decoded() const { return 0; }
};

// Builds a backend (kDefault resolves through the environment first).
std::unique_ptr<Transport> make_transport(TransportKind kind, int num_nodes);

}  // namespace treesched
