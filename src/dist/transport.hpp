// The communication backend of the synchronous runtime (dist/runtime.hpp).
//
// The paper's protocols only ever touch three communication primitives:
// post a message during the open round, flush at the round boundary, and
// drain a node's inbox of everything delivered by past boundaries.  The
// Transport interface is exactly those three calls; Runtime stays the
// round-discipline shell (connect/step/round and the message/byte
// accounting the theorems bound) and delegates the message movement to a
// pluggable backend:
//
//   kInProc              the original single-process path: posted
//                        Messages move between std::vectors, nothing is
//                        serialized.  Bytes are *modeled* (counted, not
//                        produced).  Default.
//   kSerialized          every Message is encoded into its destination's
//                        byte buffer at post time and decoded at drain
//                        time — the byte counters become real serialized
//                        sizes (the encoding is exactly the modeled
//                        16-byte header + 8 bytes per double).  Buffers
//                        are reused across rounds; the per-message
//                        encode/decode hits are counted so tests can
//                        assert every message really crossed the codec.
//   kThreadedSerialized  the serialized wire with each destination's
//                        staging queue behind its own mutex: post() is
//                        safe from concurrent threads between round
//                        boundaries, and distinct nodes' delivered
//                        buffers may be drained concurrently.  step()
//                        remains the single driver-side barrier.
//   kFaulty              an *unreliable* channel plus the recovery layer
//                        that masks it: wraps any inner backend, frames
//                        every message with a CRC32 and a per-(src,dst)
//                        sequence number, and applies a seeded
//                        deterministic FaultPlan (drop / duplicate /
//                        within-round reorder / payload bit-corruption /
//                        round delay).  Inside the round barrier the
//                        receiver dedups duplicates by sequence, rejects
//                        corrupt frames by checksum, and re-requests
//                        missing sequence numbers through a bounded
//                        ack/retransmit exchange.  While the recovery
//                        budget holds, delivery is bit-identical to the
//                        fault-free run; when it exhausts, the transport
//                        reports degraded() and counts the loss — never
//                        UB, never a hang.
//
// All backends are observationally identical: same delivery order (per
// destination, posting order), same round/message/byte counts — the
// parity suites hold them to exact (==) agreement.  A future socket/MPI
// backend implements this same interface; the codec below is its wire
// format, and the kFaulty recovery sublayer (frame checksum + sequence
// numbers + in-barrier retransmit) is the reliability contract it must
// honor.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/prelude.hpp"
#include "io/framing.hpp"  // crc32 + the shared [crc | seq] frame helpers

namespace treesched {

// One protocol message.  `data` is the payload; the paper's messages
// carry O(1) demand records, so a handful of doubles suffices.
struct Message {
  int from = -1;
  int to = -1;
  int tag = 0;
  std::vector<double> data;
};

// The modeled message cost charged by the accounting (and produced,
// byte for byte, by the serialized codec): a 16-byte header
// (from, to, tag, length) plus 8 bytes per payload double.
inline std::int64_t message_wire_bytes(const Message& m) {
  return 16 + 8 * static_cast<std::int64_t>(m.data.size());
}

enum class TransportKind {
  kDefault,  // resolve via TREESCHED_TRANSPORT (unset -> kInProc)
  kInProc,
  kSerialized,
  kThreadedSerialized,
  kFaulty,
};

const char* to_string(TransportKind kind);
// "inproc" | "serialized" | "threaded" (alias "threaded-serialized") |
// "faulty"; throws std::invalid_argument on anything else (user-facing
// flags).
TransportKind parse_transport_kind(const std::string& name);
// Resolves kDefault through the TREESCHED_TRANSPORT environment variable
// (read once per process, same env-hook pattern as TREESCHED_TRACE in
// the parity suites); other kinds pass through unchanged.  Unset or
// empty means kInProc.
TransportKind resolve_transport_kind(TransportKind kind);

// --- Message codec ---------------------------------------------------------
//
// Wire format (host byte order; the format of the serialized backends
// and of any future out-of-process backend):
//   int32 from | int32 to | int32 tag | int32 count | count x double
// 16 + 8*count bytes per message — identical to the modeled charge, so
// the byte counters mean the same thing on every backend.

// Appends the encoding of `m` to `out`; returns the bytes appended
// (always message_wire_bytes(m)).
std::size_t encode_message(const Message& m, std::vector<std::uint8_t>& out);

// Decodes one message from buf[offset...], advancing `offset` past it
// and reusing `out`'s payload capacity.  On any malformed input —
// truncated header, negative or impossible payload length, negative
// endpoints — returns false with `offset` untouched and a diagnostic in
// *error (when non-null).  Never reads past buf and never UB's on
// garbage: the codec fuzz arm in tests/test_fuzz.cpp feeds it random
// and truncated buffers under the sanitizers.
bool decode_message(std::span<const std::uint8_t> buf, std::size_t& offset,
                    Message& out, std::string* error = nullptr);

// --- Fault injection -------------------------------------------------------
//
// The kFaulty backend draws every fault from a SplitMix64 hash of
// (plan seed, src, dst, sequence number, attempt) — deterministic,
// independent of call order, and replayable from the seed alone.  The
// per-frame outcomes are mutually exclusive (one uniform draw against
// the cumulative rates), which gives the counter accounting closed
// forms the tests pin down.

struct FaultPlan {
  double drop = 0.0;       // frame vanishes; recovered by retransmit
  double duplicate = 0.0;  // frame arrives twice; deduped by sequence
  double corrupt = 0.0;    // 1-3 payload bits flip; rejected by CRC32
  double reorder = 0.0;    // within-round arrival shuffle; masked by
                           // sequence-ordered reassembly
  double delay = 0.0;      // frame slips 1..max_delay_rounds rounds;
                           // recovered by retransmit, the late original
                           // arrives as a stale duplicate
  int max_delay_rounds = 2;
  // Retransmit attempts per missing frame before the transport declares
  // the frame lost and flags the run degraded.
  int retransmit_budget = 8;
  std::uint64_t seed = 1;
  // Backend the recovery layer wraps (a concrete kind; kDefault/kFaulty
  // fall back to kSerialized).
  TransportKind inner = TransportKind::kSerialized;

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || corrupt > 0.0 ||
           reorder > 0.0 || delay > 0.0;
  }
};

// Parses "drop=0.05,dup=0.02,corrupt=0.01,reorder=0.1,delay=0.05,
// maxdelay=2,budget=8,seed=1,inner=serialized" (any subset, any order;
// "duplicate" and "retransmit" accepted as aliases).  The empty string
// is the empty plan.  Throws std::invalid_argument on unknown keys or
// unparsable values — this is the TREESCHED_FAULTS / --faults= format.
FaultPlan parse_fault_plan(const std::string& spec);

// Every counter is a frame count.  Closed forms (asserted by
// tests/test_runtime.cpp): frames_delivered + frames_lost ==
// frames_posted always; corrupt_undetected == 0 always (CRC32 detects
// every <=3-bit flip at our frame sizes); with only duplication
// injected, dup_dropped == frames_duplicated and retransmits == 0.
struct FaultStats {
  std::int64_t frames_posted = 0;
  std::int64_t frames_delivered = 0;
  std::int64_t frames_dropped = 0;     // first-attempt drops
  std::int64_t frames_duplicated = 0;
  std::int64_t frames_corrupted = 0;   // first-attempt corruptions
  std::int64_t frames_delayed = 0;
  std::int64_t frames_reordered = 0;   // displaced within a round
  std::int64_t retransmits = 0;        // re-request attempts, all frames
  std::int64_t dup_dropped = 0;        // stale/duplicate arrivals deduped
  std::int64_t corrupt_dropped = 0;    // CRC-rejected arrivals (any attempt)
  std::int64_t corrupt_undetected = 0; // corrupt frame passed CRC (never)
  std::int64_t frames_lost = 0;        // retransmit budget exhausted
};

// --- Frame codec -----------------------------------------------------------
//
// The recovery layer's frame around the message codec:
//   uint32 crc32 | uint32 seq | encoded message
// where the checksum covers the sequence number and the message bytes.
// `seq` numbers the (src, dst) stream so the receiver can dedup
// duplicates and name missing frames in the ack/retransmit exchange.
// The layout, the CRC-32, and the begin/end/verify helpers live in
// io/framing.hpp (re-exported by the include above) and are shared with
// the online service's write-ahead journal and snapshot files — the
// wire and the durable formats cannot drift apart.

// Appends the frame for (m, seq) to `out`; returns the bytes appended
// (8 + message_wire_bytes(m)).
std::size_t encode_frame(const Message& m, std::uint32_t seq,
                         std::vector<std::uint8_t>& out);

// Decodes one frame from buf[offset...], advancing `offset` past it.
// Returns false — with `offset` untouched — on a truncated header, a
// checksum mismatch, or a malformed inner message; corruption anywhere
// in the frame is detected here, never silently mis-decoded.
bool decode_frame(std::span<const std::uint8_t> buf, std::size_t& offset,
                  std::uint32_t& seq, Message& out,
                  std::string* error = nullptr);

// --- The backend interface -------------------------------------------------

class Transport {
 public:
  virtual ~Transport() = default;

  // Queues `m` for delivery at the next flush().  Validation (channel
  // open, endpoints in range) and accounting happen in Runtime before
  // the call; the backend only moves the message.
  virtual void post(Message m) = 0;

  // Round boundary: everything posted since the previous flush() becomes
  // drainable at its destination.  Driver-side only, on every backend.
  virtual void flush() = 0;

  // Fills `out` with node's delivered-but-undrained messages, in posting
  // order, and empties the inbox.  `out` arrives in an arbitrary
  // recycled state (it may still hold stale messages from a previous
  // drain — see Runtime::recycle); the backend must leave it holding
  // exactly the delivered messages, reusing its capacity where it can.
  virtual void drain(int node, std::vector<Message>& out) = 0;

  virtual TransportKind kind() const = 0;
  // Name of the per-round trace span ("round", "round.serialized", ...)
  // — a string literal, as the recorder requires.
  virtual const char* round_span_name() const = 0;

  // Codec hit counters: messages that crossed encode_message /
  // decode_message.  Zero on the in-proc path; equal to messages_sent on
  // the serialized paths once every inbox is drained (asserted by the
  // transport-axis tests).  The kFaulty backend counts at the frame
  // layer: encoded at post, decoded when a pristine frame is accepted —
  // so both still equal messages_sent whenever recovery masks the plan.
  virtual std::int64_t codec_encoded() const { return 0; }
  virtual std::int64_t codec_decoded() const { return 0; }

  // Fault-injection observability; non-null / meaningful only on the
  // kFaulty backend.  degraded() flips (monotonically) the first time a
  // frame exhausts its retransmit budget — from then on delivery is no
  // longer bit-identical to the fault-free run and results must be
  // treated as partial.
  virtual const FaultStats* fault_stats() const { return nullptr; }
  virtual bool degraded() const { return false; }
};

// Builds a backend (kDefault resolves through the environment first).
// `faults`, when non-null with a non-empty plan, wraps the resolved
// backend in the kFaulty recovery layer (the resolved concrete kind
// becomes the inner backend).  Otherwise, when the caller asked for
// kDefault or kFaulty, the TREESCHED_FAULTS environment variable (read
// once per process) supplies the plan — explicitly requested concrete
// kinds are never wrapped by the environment, so an env-driven fault
// run leaves explicit-kind tests untouched.
std::unique_ptr<Transport> make_transport(TransportKind kind, int num_nodes,
                                          const FaultPlan* faults = nullptr);

}  // namespace treesched
