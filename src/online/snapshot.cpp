#include "online/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/prelude.hpp"
#include "io/framing.hpp"

namespace treesched {

namespace {

constexpr std::uint32_t kSectionRecords = 1;
constexpr std::uint32_t kSectionWide = 2;
constexpr std::uint32_t kSectionNarrow = 3;
constexpr std::uint32_t kSectionCount = 3;
constexpr std::size_t kHeaderBytes = 28;  // 24 + u32 header crc

void fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

bool count_fits(std::span<const std::uint8_t> buf, std::size_t offset,
                std::uint32_t count, std::size_t min_elem_bytes) {
  return static_cast<std::size_t>(count) <=
         (buf.size() - offset) / min_elem_bytes;
}

// --- section payload codecs ------------------------------------------------

void encode_records(const std::vector<SnapshotDemandRecord>& records,
                    std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const SnapshotDemandRecord& r : records) {
    put_i32(out, r.u);
    put_i32(out, r.v);
    put_f64(out, r.profit);
    put_f64(out, r.height);
    put_i64(out, r.key);
    put_u8(out, r.alive ? 1 : 0);
    put_u32(out, static_cast<std::uint32_t>(r.access.size()));
    for (const NetworkId n : r.access) put_i32(out, n);
  }
}

bool decode_records(std::span<const std::uint8_t> buf, std::size_t& offset,
                    std::vector<SnapshotDemandRecord>& out,
                    std::string* error) {
  std::uint32_t count = 0;
  if (!get_u32(buf, offset, count)) {
    fail(error, "snapshot records header truncated");
    return false;
  }
  // Each record is at least 37 bytes (u+v, profit+height, key, alive,
  // access count).
  if (!count_fits(buf, offset, count, 37)) {
    fail(error, "snapshot record count exceeds remaining bytes");
    return false;
  }
  out.resize(count);
  for (SnapshotDemandRecord& r : out) {
    std::uint8_t alive = 0;
    std::uint32_t access_count = 0;
    if (!get_i32(buf, offset, r.u) || !get_i32(buf, offset, r.v) ||
        !get_f64(buf, offset, r.profit) || !get_f64(buf, offset, r.height) ||
        !get_i64(buf, offset, r.key) || !get_u8(buf, offset, alive) ||
        !get_u32(buf, offset, access_count)) {
      fail(error, "snapshot record truncated");
      return false;
    }
    if (r.u < 0 || r.v < 0 || alive > 1) {
      fail(error, "snapshot record corrupt");
      return false;
    }
    r.alive = alive != 0;
    if (!count_fits(buf, offset, access_count, 4)) {
      fail(error, "snapshot record access count exceeds remaining bytes");
      return false;
    }
    r.access.resize(access_count);
    for (NetworkId& n : r.access) {
      if (!get_i32(buf, offset, n)) {
        fail(error, "snapshot record access list truncated");
        return false;
      }
    }
  }
  return true;
}

void encode_class(const ClassSnapshot& cls, std::vector<std::uint8_t>& out) {
  put_u8(out, cls.valid ? 1 : 0);
  put_u8(out, cls.any_active ? 1 : 0);
  put_i32(out, cls.delta);
  put_f64(out, cls.h_min);
  put_f64(out, cls.xi);
  put_i32(out, cls.stages_per_epoch);
  put_u32(out, static_cast<std::uint32_t>(cls.mask.size()));
  out.insert(out.end(), cls.mask.begin(), cls.mask.end());
  put_u32(out, static_cast<std::uint32_t>(cls.components.size()));
  for (const SnapshotComponent& comp : cls.components) {
    put_u32(out, static_cast<std::uint32_t>(comp.members.size()));
    for (const InstanceId id : comp.members) put_i32(out, id);
    put_f64(out, comp.lambda);
    for (const double x : comp.lhs) put_f64(out, x);  // |members| values
    put_u32(out, static_cast<std::uint32_t>(comp.rows.size()));
    for (std::size_t i = 0; i < comp.rows.size(); ++i) {
      put_i32(out, comp.tags[i].group);
      put_i32(out, comp.tags[i].stage);
      put_i32(out, comp.tags[i].step);
      put_u32(out, static_cast<std::uint32_t>(comp.rows[i].size()));
      for (const InstanceId id : comp.rows[i]) put_i32(out, id);
    }
  }
}

bool decode_class(std::span<const std::uint8_t> buf, std::size_t& offset,
                  ClassSnapshot& out, std::string* error) {
  std::uint8_t valid = 0, any_active = 0;
  std::uint32_t mask_size = 0;
  if (!get_u8(buf, offset, valid) || !get_u8(buf, offset, any_active) ||
      !get_i32(buf, offset, out.delta) || !get_f64(buf, offset, out.h_min) ||
      !get_f64(buf, offset, out.xi) ||
      !get_i32(buf, offset, out.stages_per_epoch) ||
      !get_u32(buf, offset, mask_size)) {
    fail(error, "snapshot class header truncated");
    return false;
  }
  if (valid > 1 || any_active > 1) {
    fail(error, "snapshot class corrupt (bad flag)");
    return false;
  }
  out.valid = valid != 0;
  out.any_active = any_active != 0;
  if (!count_fits(buf, offset, mask_size, 1)) {
    fail(error, "snapshot class mask exceeds remaining bytes");
    return false;
  }
  out.mask.resize(mask_size);
  for (char& m : out.mask) {
    std::uint8_t b = 0;
    if (!get_u8(buf, offset, b)) {
      fail(error, "snapshot class mask truncated");
      return false;
    }
    if (b > 1) {
      fail(error, "snapshot class mask corrupt");
      return false;
    }
    m = static_cast<char>(b);
  }
  std::uint32_t comp_count = 0;
  if (!get_u32(buf, offset, comp_count)) {
    fail(error, "snapshot class component count truncated");
    return false;
  }
  // A component is at least 16 bytes (member count, lambda, row count).
  if (!count_fits(buf, offset, comp_count, 16)) {
    fail(error, "snapshot class component count exceeds remaining bytes");
    return false;
  }
  out.components.resize(comp_count);
  for (SnapshotComponent& comp : out.components) {
    std::uint32_t member_count = 0;
    if (!get_u32(buf, offset, member_count)) {
      fail(error, "snapshot component truncated");
      return false;
    }
    // Members then lambda then |members| LHS doubles.  A component has
    // at least one member (the forest never produces empty components,
    // and assemble keys the cache by the first member).
    if (member_count == 0) {
      fail(error, "snapshot component corrupt (empty member list)");
      return false;
    }
    if (!count_fits(buf, offset, member_count, 4 + 8)) {
      fail(error, "snapshot component member count exceeds remaining bytes");
      return false;
    }
    comp.members.resize(member_count);
    for (InstanceId& id : comp.members) {
      if (!get_i32(buf, offset, id)) {
        fail(error, "snapshot component members truncated");
        return false;
      }
      if (id < 0) {
        fail(error, "snapshot component corrupt (negative member)");
        return false;
      }
    }
    if (!get_f64(buf, offset, comp.lambda)) {
      fail(error, "snapshot component lambda truncated");
      return false;
    }
    comp.lhs.resize(member_count);
    for (double& x : comp.lhs) {
      if (!get_f64(buf, offset, x)) {
        fail(error, "snapshot component lhs truncated");
        return false;
      }
    }
    std::uint32_t row_count = 0;
    if (!get_u32(buf, offset, row_count)) {
      fail(error, "snapshot component row count truncated");
      return false;
    }
    // A row is at least 16 bytes (tag triple + id count).
    if (!count_fits(buf, offset, row_count, 16)) {
      fail(error, "snapshot component row count exceeds remaining bytes");
      return false;
    }
    comp.rows.resize(row_count);
    comp.tags.resize(row_count);
    for (std::uint32_t i = 0; i < row_count; ++i) {
      std::uint32_t id_count = 0;
      if (!get_i32(buf, offset, comp.tags[i].group) ||
          !get_i32(buf, offset, comp.tags[i].stage) ||
          !get_i32(buf, offset, comp.tags[i].step) ||
          !get_u32(buf, offset, id_count)) {
        fail(error, "snapshot stack row truncated");
        return false;
      }
      // A raise-stack row is never empty (every step raises someone).
      if (id_count == 0) {
        fail(error, "snapshot stack row corrupt (empty row)");
        return false;
      }
      if (!count_fits(buf, offset, id_count, 4)) {
        fail(error, "snapshot stack row id count exceeds remaining bytes");
        return false;
      }
      comp.rows[i].resize(id_count);
      for (InstanceId& id : comp.rows[i]) {
        if (!get_i32(buf, offset, id)) {
          fail(error, "snapshot stack row ids truncated");
          return false;
        }
      }
    }
  }
  return true;
}

// Appends one [crc | section_id | payload] section frame.
template <typename EncodeFn>
void append_section(std::vector<std::uint8_t>& out, std::uint32_t section_id,
                    EncodeFn&& encode) {
  const std::size_t frame_start = begin_crc_frame(out);
  encode(out);
  end_crc_frame(out, frame_start, section_id);
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const SchedulerSnapshot& snap) {
  std::vector<std::uint8_t> out;
  // Header, with the total-bytes field patched once the image is done.
  put_u32(out, kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, snap.batches_applied);
  put_u32(out, kSectionCount);
  put_u64(out, 0);  // total_bytes placeholder
  put_u32(out, 0);  // header crc placeholder
  append_section(out, kSectionRecords,
                 [&](std::vector<std::uint8_t>& b) {
                   encode_records(snap.records, b);
                 });
  append_section(out, kSectionWide, [&](std::vector<std::uint8_t>& b) {
    encode_class(snap.wide, b);
  });
  append_section(out, kSectionNarrow, [&](std::vector<std::uint8_t>& b) {
    encode_class(snap.narrow, b);
  });
  const std::uint64_t total = out.size();
  std::memcpy(out.data() + 16, &total, 8);
  const std::uint32_t crc = crc32({out.data(), 24});
  std::memcpy(out.data() + 24, &crc, 4);
  return out;
}

bool decode_snapshot(std::span<const std::uint8_t> bytes,
                     SchedulerSnapshot& out, std::string* error) {
  std::size_t offset = 0;
  std::uint32_t magic = 0, version = 0, seq = 0, section_count = 0;
  std::uint64_t total_bytes = 0;
  std::uint32_t header_crc = 0;
  if (!get_u32(bytes, offset, magic) || !get_u32(bytes, offset, version) ||
      !get_u32(bytes, offset, seq) ||
      !get_u32(bytes, offset, section_count) ||
      !get_u64(bytes, offset, total_bytes) ||
      !get_u32(bytes, offset, header_crc)) {
    fail(error, "snapshot header truncated");
    return false;
  }
  if (magic != kSnapshotMagic) {
    fail(error, "snapshot magic mismatch (not a snapshot file)");
    return false;
  }
  // Distinct, loud failure for schema drift: a future format bump must
  // never be mistaken for corruption (or silently half-read).
  if (version != kSnapshotVersion) {
    fail(error, "snapshot schema version mismatch (file v" +
                    std::to_string(version) + ", binary v" +
                    std::to_string(kSnapshotVersion) + ")");
    return false;
  }
  if (crc32({bytes.data(), 24}) != header_crc) {
    fail(error, "snapshot header checksum mismatch");
    return false;
  }
  if (total_bytes != bytes.size()) {
    fail(error, "snapshot length mismatch (header says " +
                    std::to_string(total_bytes) + " bytes, have " +
                    std::to_string(bytes.size()) + ")");
    return false;
  }
  if (section_count != kSectionCount) {
    fail(error, "snapshot section count mismatch");
    return false;
  }
  SchedulerSnapshot snap;
  snap.batches_applied = seq;
  for (std::uint32_t want_id = kSectionRecords; want_id <= kSectionNarrow;
       ++want_id) {
    // Structurally parse the section payload to learn the frame extent,
    // then verify the checksum over exactly those bytes.
    std::size_t payload_end = offset + kCrcFrameHeaderBytes;
    if (bytes.size() < payload_end) {
      fail(error, "snapshot section header truncated");
      return false;
    }
    bool ok = false;
    switch (want_id) {
      case kSectionRecords:
        ok = decode_records(bytes, payload_end, snap.records, error);
        break;
      case kSectionWide:
        ok = decode_class(bytes, payload_end, snap.wide, error);
        break;
      case kSectionNarrow:
        ok = decode_class(bytes, payload_end, snap.narrow, error);
        break;
      default:
        break;
    }
    if (!ok) return false;
    std::uint32_t section_id = 0;
    if (!verify_crc_frame(bytes, offset, payload_end - offset, section_id,
                          error)) {
      if (error != nullptr) *error = "snapshot section " + *error;
      return false;
    }
    if (section_id != want_id) {
      fail(error, "snapshot section id mismatch (expected " +
                      std::to_string(want_id) + ", found " +
                      std::to_string(section_id) + ")");
      return false;
    }
    offset = payload_end;
  }
  if (offset != bytes.size()) {
    fail(error, "snapshot has trailing bytes");
    return false;
  }
  out = std::move(snap);
  return true;
}

// --- the A/B slot store ----------------------------------------------------

namespace {

// Validity and sequence of one slot file.  A missing or invalid slot is
// seq-less; `note` collects a diagnostic for rejected non-empty slots.
struct SlotProbe {
  bool valid = false;
  std::uint32_t seq = 0;
  SchedulerSnapshot snap;
};

SlotProbe probe_slot(const std::string& path, std::string* note) {
  SlotProbe probe;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return probe;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (note != nullptr) *note += "slot '" + path + "' unreadable; ";
    return probe;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::string error;
  if (!decode_snapshot(bytes, probe.snap, &error)) {
    if (note != nullptr)
      *note += "slot '" + path + "' rejected: " + error + "; ";
    return probe;
  }
  probe.valid = true;
  probe.seq = probe.snap.batches_applied;
  return probe;
}

}  // namespace

SnapshotStore::SnapshotStore(std::string base)
    : slot_a_(base + ".a"), slot_b_(base + ".b") {
  check_input(!base.empty(), "snapshot store: empty base path");
}

void SnapshotStore::reset() {
  std::error_code ec;
  std::filesystem::remove(slot_a_, ec);
  std::filesystem::remove(slot_b_, ec);
}

std::size_t SnapshotStore::write(const SchedulerSnapshot& snap,
                                 std::size_t truncate_at) {
  const std::vector<std::uint8_t> image = encode_snapshot(snap);
  // Target the slot NOT holding the newest valid snapshot, so the
  // previous one survives a torn write of this one.
  const SlotProbe a = probe_slot(slot_a_, nullptr);
  const SlotProbe b = probe_slot(slot_b_, nullptr);
  std::string target = slot_a_;
  if (a.valid && (!b.valid || a.seq >= b.seq)) target = slot_b_;
  const std::size_t bytes = std::min(truncate_at, image.size());
  std::ofstream out(target, std::ios::binary | std::ios::trunc);
  check_input(out.good(), "snapshot store: cannot open '" + target + "'");
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(bytes));
  out.flush();
  check_input(out.good(), "snapshot store: write failed on '" + target + "'");
  return bytes;
}

bool SnapshotStore::load_newest(SchedulerSnapshot& out,
                                std::string* note) const {
  if (note != nullptr) note->clear();
  SlotProbe a = probe_slot(slot_a_, note);
  SlotProbe b = probe_slot(slot_b_, note);
  if (!a.valid && !b.valid) {
    if (note != nullptr) *note += "no valid snapshot";
    return false;
  }
  SlotProbe& newest = (a.valid && (!b.valid || a.seq >= b.seq)) ? a : b;
  if (note != nullptr)
    *note += "loaded snapshot at batch " + std::to_string(newest.seq);
  out = std::move(newest.snap);
  return true;
}

}  // namespace treesched
