// Versioned, section-checksummed binary snapshots of the full
// OnlineScheduler warm-start state.
//
// The snapshot is the *irreducible* state: the demand records with their
// tombstones (which fix the compaction high-water mark — live/dead
// counts are recomputed from them), the journal cursor (batches_applied,
// which doubles as the event-stream RNG cursor: traces are regenerated
// from the seed and resumed by skipping the applied prefix), and per
// height class the pinned stage parameters, the live-in-class mask and
// every component's stack/tag/LHS/lambda cache.  Everything else the
// scheduler holds — the materialized Problem, the layered plans, the
// per-class ComponentForests — is a deterministic function of those
// (Problem::reopen rebuild + ComponentForest::build, whose equality with
// the incrementally-updated forest test_component_forest pins), so
// restore recomputes it instead of trusting bytes on disk.
//
// File layout (host byte order, shared io/framing.hpp helpers):
//   header:  u32 magic | u32 version | u32 seq | u32 section_count |
//            u64 total_bytes | u32 header_crc  (crc over the 24 bytes
//            before it)
//   then section_count sections, each a [u32 crc | u32 section_id |
//   payload] frame — the same layout as the wire recovery sublayer and
//   the journal, with the section id in the sequence slot and the
//   payload self-delimiting.
// A wrong magic or version fails loudly and distinctly (schema drift is
// not corruption); any flipped bit lands on the header CRC, a section
// CRC, or a structural reject — never on a silently different state.
//
// Snapshots are written through SnapshotStore, an A/B double-buffered
// pair of slot files: a write targets the slot NOT holding the newest
// valid snapshot, so a crash mid-write (torn slot) always leaves the
// previous snapshot intact; the loader picks the valid slot with the
// highest sequence number.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "framework/two_phase.hpp"
#include "online/event_stream.hpp"

namespace treesched {

inline constexpr std::uint32_t kSnapshotMagic = 0x544E5350u;  // "PSNT"
inline constexpr std::uint32_t kSnapshotVersion = 1;

// --- the captured state ----------------------------------------------------

struct SnapshotDemandRecord {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  Profit profit = 0.0;
  Height height = 1.0;
  std::vector<NetworkId> access;  // empty = all networks
  DemandKey key = 0;
  bool alive = true;

  friend bool operator==(const SnapshotDemandRecord&,
                         const SnapshotDemandRecord&) = default;
};

// One conflict component's cache, in forest component order.
struct SnapshotComponent {
  std::vector<InstanceId> members;            // ascending ids
  std::vector<std::vector<InstanceId>> rows;  // the comp's stack rows
  std::vector<StackTag> tags;                 // parallel to rows
  std::vector<double> lhs;                    // parallel to members
  double lambda = 1.0;

  friend bool operator==(const SnapshotComponent&,
                         const SnapshotComponent&) = default;
};

struct ClassSnapshot {
  bool valid = false;
  bool any_active = false;  // StageParams, flattened for the default ==
  int delta = 0;
  double h_min = 1.0;
  double xi = 0.0;
  int stages_per_epoch = 1;
  std::vector<char> mask;  // live AND in-class, per instance id
  std::vector<SnapshotComponent> components;

  StageParams params() const {
    return {any_active, delta, h_min, xi, stages_per_epoch};
  }
  void set_params(const StageParams& p) {
    any_active = p.any_active;
    delta = p.delta;
    h_min = p.h_min;
    xi = p.xi;
    stages_per_epoch = p.stages_per_epoch;
  }

  friend bool operator==(const ClassSnapshot&, const ClassSnapshot&) = default;
};

struct SchedulerSnapshot {
  // Batches applied == journal sequence cursor == event-stream cursor.
  std::uint32_t batches_applied = 0;
  std::vector<SnapshotDemandRecord> records;  // index = demand id
  ClassSnapshot wide, narrow;

  friend bool operator==(const SchedulerSnapshot&,
                         const SchedulerSnapshot&) = default;
};

// --- codec -----------------------------------------------------------------

// Encodes the snapshot into a fresh byte image (deterministic: equal
// snapshots encode to equal bytes).
std::vector<std::uint8_t> encode_snapshot(const SchedulerSnapshot& snap);

// Decodes a full snapshot image.  Returns false — with a diagnostic in
// *error when non-null — on a wrong magic, a version mismatch (reported
// distinctly: schema drift must fail loudly), a header or section
// checksum mismatch, a structural reject, or trailing/missing bytes.
// Never UB on garbage: every count is bounds-checked before allocation.
bool decode_snapshot(std::span<const std::uint8_t> bytes,
                     SchedulerSnapshot& out, std::string* error = nullptr);

// --- the A/B slot store ----------------------------------------------------

class SnapshotStore {
 public:
  // The store writes `base + ".a"` and `base + ".b"`.
  explicit SnapshotStore(std::string base);

  const std::string& slot_a() const { return slot_a_; }
  const std::string& slot_b() const { return slot_b_; }

  // Removes both slot files (fresh service start).
  void reset();

  // Encodes `snap` and writes it to the slot not holding the newest
  // valid snapshot.  Returns the bytes written.  `truncate_at`, when
  // below the image size, simulates a crash mid-write: only that prefix
  // reaches the file (the caller is expected to die right after).
  static constexpr std::size_t kWholeImage = static_cast<std::size_t>(-1);
  std::size_t write(const SchedulerSnapshot& snap,
                    std::size_t truncate_at = kWholeImage);

  // Loads the newest valid snapshot across both slots.  Returns false
  // when neither slot holds one; *note (when non-null) describes what
  // was found — including any torn/corrupt slot that was rejected.
  bool load_newest(SchedulerSnapshot& out, std::string* note = nullptr) const;

 private:
  std::string slot_a_, slot_b_;
};

}  // namespace treesched
