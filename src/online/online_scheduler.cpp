#include "online/online_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.hpp"

namespace treesched {

namespace {

inline std::int64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

bool in_class(const DemandInstance& inst, RaiseRuleKind rule) {
  return rule == RaiseRuleKind::kUnit ? is_wide_instance(inst)
                                      : !is_wide_instance(inst);
}

bool params_equal(const StageParams& a, const StageParams& b) {
  return a.any_active == b.any_active && a.delta == b.delta &&
         a.h_min == b.h_min && a.xi == b.xi &&
         a.stages_per_epoch == b.stages_per_epoch;
}

// Combines the per-class artifacts exactly as solve_height_split does:
// better-of per network when both classes ran, pass-through otherwise.
void combine_classes(const Problem& problem, OnlineSolveArtifacts& out) {
  if (out.wide.any && out.narrow.any) {
    out.solution = combine_better_of_per_network(problem, out.wide.solution,
                                                 out.narrow.solution);
    out.lambda = std::min(out.wide.lambda, out.narrow.lambda);
  } else if (out.wide.any) {
    out.solution = out.wide.solution;
    out.lambda = out.wide.lambda;
  } else if (out.narrow.any) {
    out.solution = out.narrow.solution;
    out.lambda = out.narrow.lambda;
  }
  out.profit = out.solution.profit(problem);
}

}  // namespace

void OnlineScheduler::adopt_topology(const Problem& base) {
  TS_REQUIRE(base.finalized());
  num_vertices_ = base.num_vertices();
  networks_ = base.shared_networks();
  capacities_.resize(static_cast<std::size_t>(base.num_global_edges()));
  for (EdgeId e = 0; e < base.num_global_edges(); ++e)
    capacities_[static_cast<std::size_t>(e)] = base.capacity(e);
  decomps_.reserve(networks_->size());
  for (const TreeNetwork& network : *networks_)
    decomps_.push_back(build_decomposition(network, config_.decomp));
}

OnlineScheduler::OnlineScheduler(const Problem& base, OnlineConfig config)
    : config_(std::move(config)) {
  adopt_topology(base);

  // The base's demands become permanent residents (negative keys, so the
  // event stream's non-negative keys can never collide).
  records_.reserve(static_cast<std::size_t>(base.num_demands()));
  for (DemandId d = 0; d < base.num_demands(); ++d) {
    const Demand& dem = base.demand(d);
    DemandRecord rec;
    rec.u = dem.u;
    rec.v = dem.v;
    rec.profit = dem.profit;
    rec.height = dem.height;
    const auto& acc = base.access(d);
    if (static_cast<int>(acc.size()) < base.num_networks()) rec.access = acc;
    rec.key = -static_cast<DemandKey>(d) - 1;
    index_of_key_[rec.key] = static_cast<int>(records_.size());
    records_.push_back(std::move(rec));
    ++live_demands_;
  }

  wide_.rule = RaiseRuleKind::kUnit;
  narrow_.rule = RaiseRuleKind::kNarrow;

  rebuild_problem();
  OnlineBatchReport ignored;
  refresh_class(wide_, ignored);
  refresh_class(narrow_, ignored);
}

OnlineScheduler::OnlineScheduler(const Problem& base, OnlineConfig config,
                                 const SchedulerSnapshot& snap)
    : config_(std::move(config)) {
  adopt_topology(base);

  // The snapshot's record list is the full post-churn state — residents
  // included — so nothing is adopted from the base beyond the topology.
  records_.reserve(snap.records.size());
  for (const SnapshotDemandRecord& r : snap.records) {
    check_input(r.u >= 0 && r.u < num_vertices_ && r.v >= 0 &&
                    r.v < num_vertices_,
                "snapshot: record endpoint out of range for this base");
    check_input(index_of_key_.find(r.key) == index_of_key_.end(),
                "snapshot: duplicate demand key");
    DemandRecord rec;
    rec.u = r.u;
    rec.v = r.v;
    rec.profit = r.profit;
    rec.height = r.height;
    rec.access = r.access;
    rec.key = r.key;
    rec.alive = r.alive;
    index_of_key_[rec.key] = static_cast<int>(records_.size());
    records_.push_back(std::move(rec));
    if (r.alive)
      ++live_demands_;
    else
      ++dead_demands_;
  }
  batches_applied_ = static_cast<int>(snap.batches_applied);

  wide_.rule = RaiseRuleKind::kUnit;
  narrow_.rule = RaiseRuleKind::kNarrow;

  // The materialized problem, the layered plans and (below, per class)
  // the forests are deterministic functions of the records: recompute
  // them instead of trusting serialized derived state.
  rebuild_problem();
  restore_class(wide_, snap.wide);
  restore_class(narrow_, snap.narrow);
}

SchedulerSnapshot OnlineScheduler::capture() const {
  SchedulerSnapshot snap;
  snap.batches_applied = static_cast<std::uint32_t>(batches_applied_);
  snap.records.reserve(records_.size());
  for (const DemandRecord& rec : records_) {
    SnapshotDemandRecord r;
    r.u = rec.u;
    r.v = rec.v;
    r.profit = rec.profit;
    r.height = rec.height;
    r.access = rec.access;
    r.key = rec.key;
    r.alive = rec.alive;
    snap.records.push_back(std::move(r));
  }
  capture_class(wide_, snap.wide);
  capture_class(narrow_, snap.narrow);
  return snap;
}

void OnlineScheduler::capture_class(const ClassState& cls,
                                    ClassSnapshot& out) const {
  out.valid = cls.valid;
  out.set_params(cls.params);
  out.mask = cls.mask;
  out.components.clear();
  if (!cls.valid) return;
  // Forest component order, so equal states capture to equal bytes (the
  // cache map's own iteration order is not deterministic).
  const int comps = cls.forest.components_in_group(0);
  out.components.reserve(static_cast<std::size_t>(comps));
  for (int c = 0; c < comps; ++c) {
    const auto ids = cls.forest.component_ids(0, c);
    const auto it = cls.cache.find(ids.front());
    TS_REQUIRE(it != cls.cache.end());
    const CompCache& cc = it->second;
    SnapshotComponent sc;
    sc.members = cc.members;
    sc.rows = cc.rows;
    sc.tags = cc.tags;
    sc.lhs = cc.lhs;
    sc.lambda = cc.lambda;
    out.components.push_back(std::move(sc));
  }
}

void OnlineScheduler::restore_class(ClassState& cls,
                                    const ClassSnapshot& snap) {
  cls.params = snap.params();
  cls.mask = snap.mask;
  cls.valid = snap.valid;
  cls.cache.clear();
  if (!cls.valid) return;
  check_input(cls.mask.size() ==
                  static_cast<std::size_t>(problem_->num_instances()),
              "snapshot: class mask does not match the rebuilt problem");
  cls.forest.build(*problem_, forest_plan_, cls.mask);
  // The caches are installed verbatim, but only after the rebuilt
  // forest's partition confirms them: every component's member list must
  // match its cache entry exactly, or the snapshot belongs to a
  // different problem than the records rebuild.
  const int comps = cls.forest.components_in_group(0);
  check_input(static_cast<std::size_t>(comps) == snap.components.size(),
              "snapshot: component count does not match the rebuilt forest");
  cls.cache.reserve(static_cast<std::size_t>(comps));
  for (int c = 0; c < comps; ++c) {
    const auto ids = cls.forest.component_ids(0, c);
    const SnapshotComponent& sc = snap.components[static_cast<std::size_t>(c)];
    check_input(sc.members.size() == ids.size() &&
                    std::equal(ids.begin(), ids.end(), sc.members.begin()),
                "snapshot: component members do not match the rebuilt forest");
    check_input(sc.lhs.size() == sc.members.size() &&
                    sc.tags.size() == sc.rows.size(),
                "snapshot: component cache shape mismatch");
    CompCache cc;
    cc.members = sc.members;
    cc.rows = sc.rows;
    cc.tags = sc.tags;
    cc.lhs = sc.lhs;
    cc.lambda = sc.lambda;
    cls.cache.emplace(cc.members.front(), std::move(cc));
  }
}

void OnlineScheduler::rebuild_problem() {
  TRACE_SPAN1("online", "rebuild_problem", "demands", records_.size());
  if (problem_.has_value()) {
    // Between compactions the record set is append-only (tombstones only
    // flip liveness), so the materialized problem extends in place:
    // reopen, append the new records, re-finalize — O(new instances) for
    // the expansion, linear index rebuild — and grow the plans to match.
    Problem& p = *problem_;
    const int old_demands = p.num_demands();
    TS_REQUIRE(old_demands <= static_cast<int>(records_.size()));
    if (old_demands == static_cast<int>(records_.size())) return;
    p.reopen();
    for (std::size_t r = static_cast<std::size_t>(old_demands);
         r < records_.size(); ++r) {
      const DemandRecord& rec = records_[r];
      const DemandId d = p.add_demand(rec.u, rec.v, rec.profit, rec.height);
      if (!rec.access.empty()) p.set_access(d, rec.access);
    }
    p.finalize();
    extend_tree_layered_plan(p, decomps_, plan_);
  } else {
    Problem p(num_vertices_, networks_);
    EdgeId global = 0;
    for (NetworkId q = 0; q < static_cast<NetworkId>(networks_->size());
         ++q) {
      const EdgeId local_edges =
          (*networks_)[static_cast<std::size_t>(q)].num_edges();
      for (EdgeId local = 0; local < local_edges; ++local)
        p.set_capacity(q, local,
                       capacities_[static_cast<std::size_t>(global++)]);
    }
    // Every record is materialized — dead ones included.  Tombstones keep
    // demand and instance ids append-stable between compactions, which is
    // what lets the per-component caches survive a batch.
    for (const DemandRecord& rec : records_) {
      const DemandId d = p.add_demand(rec.u, rec.v, rec.profit, rec.height);
      if (!rec.access.empty()) p.set_access(d, rec.access);
    }
    p.finalize();
    plan_ = build_tree_layered_plan(p, decomps_);
    problem_.emplace(std::move(p));
    forest_plan_.num_groups = 1;
    forest_plan_.delta = 0;
    forest_plan_.group.clear();
    forest_plan_.critical.clear();  // the forest never reads critical sets
    forest_plan_.members.assign(1, {});
  }

  const int n = problem_->num_instances();
  const auto old_n = static_cast<InstanceId>(forest_plan_.group.size());
  forest_plan_.group.resize(static_cast<std::size_t>(n), 0);
  for (InstanceId i = old_n; i < n; ++i)
    forest_plan_.members.front().push_back(i);
}

void OnlineScheduler::compact() {
  TRACE_SPAN1("online", "compact", "dead", dead_demands_);
  std::vector<DemandRecord> survivors;
  survivors.reserve(static_cast<std::size_t>(live_demands_));
  index_of_key_.clear();
  for (DemandRecord& rec : records_) {
    if (!rec.alive) continue;
    index_of_key_[rec.key] = static_cast<int>(survivors.size());
    survivors.push_back(std::move(rec));
  }
  records_ = std::move(survivors);
  dead_demands_ = 0;
  // The surviving records renumber, so the incremental extension path is
  // off the table: drop the materialized problem to force a full rebuild.
  problem_.reset();
  // Instance ids were renumbered: every cache is void.
  wide_.valid = false;
  wide_.cache.clear();
  wide_.mask.clear();
  narrow_.valid = false;
  narrow_.cache.clear();
  narrow_.mask.clear();
}

std::vector<char> OnlineScheduler::live_mask() const {
  const int n = problem_->num_instances();
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (InstanceId i = 0; i < n; ++i) {
    const auto d = static_cast<std::size_t>(problem_->instance(i).demand);
    mask[static_cast<std::size_t>(i)] = records_[d].alive ? 1 : 0;
  }
  return mask;
}

OnlineBatchReport OnlineScheduler::step(const EventBatch& batch) {
  TRACE_SPAN2("online", "step", "arrivals", batch.arrivals.size(),
              "departures", batch.departures.size());
  const auto t0 = std::chrono::steady_clock::now();
  OnlineBatchReport report;
  report.batch = batches_applied_++;
  report.time = batch.time;
  report.arrivals = static_cast<int>(batch.arrivals.size());
  report.departures = static_cast<int>(batch.departures.size());

  for (const OnlineArrival& arrival : batch.arrivals) {
    TS_REQUIRE(index_of_key_.find(arrival.key) == index_of_key_.end());
    DemandRecord rec;
    rec.u = arrival.draw.u;
    rec.v = arrival.draw.v;
    rec.profit = arrival.draw.profit;
    rec.height = arrival.draw.height;
    rec.access = arrival.draw.access;
    rec.key = arrival.key;
    index_of_key_[rec.key] = static_cast<int>(records_.size());
    records_.push_back(std::move(rec));
    ++live_demands_;
  }
  for (const DemandKey key : batch.departures) {
    const auto it = index_of_key_.find(key);
    TS_REQUIRE(it != index_of_key_.end());
    DemandRecord& rec = records_[static_cast<std::size_t>(it->second)];
    TS_REQUIRE(rec.alive);
    rec.alive = false;
    --live_demands_;
    ++dead_demands_;
  }

  const bool compacted =
      dead_demands_ > config_.compaction_floor &&
      static_cast<double>(dead_demands_) >
          config_.compaction_slack * static_cast<double>(live_demands_);
  if (compacted) compact();
  report.compacted = compacted;

  // A departure-only batch leaves the materialized problem untouched —
  // tombstones only flip the liveness mask, never the instance set.
  const auto t_rebuild = std::chrono::steady_clock::now();
  if (!batch.arrivals.empty() || compacted) rebuild_problem();
  report.rebuild_ns = elapsed_ns(t_rebuild);

  const auto t_refresh = std::chrono::steady_clock::now();
  refresh_class(wide_, report);
  refresh_class(narrow_, report);
  report.refresh_ns = elapsed_ns(t_refresh);

  report.live_demands = live_demands_;
  int live_instances = 0;
  for (const char alive : live_mask()) live_instances += alive;
  report.live_instances = live_instances;
  report.solve_ns = elapsed_ns(t0);
  return report;
}

void OnlineScheduler::refresh_class(ClassState& cls,
                                    OnlineBatchReport& report) {
  const Problem& problem = *problem_;
  const int n = problem.num_instances();

  // The class's new active mask (live AND in-class) and its delta
  // against the previous batch.
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (InstanceId i = 0; i < n; ++i) {
    const DemandInstance& inst = problem.instance(i);
    mask[static_cast<std::size_t>(i)] =
        in_class(inst, cls.rule) &&
                records_[static_cast<std::size_t>(inst.demand)].alive
            ? 1
            : 0;
  }
  std::vector<InstanceId> added, removed;
  const int old_n = static_cast<int>(cls.mask.size());
  for (InstanceId i = 0; i < n; ++i) {
    const bool now = mask[static_cast<std::size_t>(i)] != 0;
    const bool before =
        i < old_n && cls.mask[static_cast<std::size_t>(i)] != 0;
    if (now && !before) added.push_back(i);
    if (!now && before) removed.push_back(i);
  }

  // The class stage schedule every run (warm or cold) is pinned to.  A
  // moved parameter invalidates every cached component: they were solved
  // under a different schedule.
  const StageParams params =
      derive_stage_params(problem, plan_, mask, cls.rule,
                          config_.solver.epsilon, config_.solver.xi_override);
  const bool params_changed = !params_equal(params, cls.params);
  if (params_changed && cls.valid) report.params_changed = true;

  if (cls.valid)
    cls.forest.update(problem, forest_plan_, mask, added, removed);
  else
    cls.forest.build(problem, forest_plan_, mask);

  const bool force_all = !cls.valid || params_changed ||
                         config_.mode == OnlineSolveMode::kCold;

  // A component is reusable iff its member set is cached verbatim: the
  // dynamics of a component depend only on its members (ids resolve to
  // immutable demand data), the capacities and the pinned schedule, so
  // an unchanged member list means an unchanged solve.
  const int comps = cls.forest.components_in_group(0);
  std::vector<int> touched;
  std::vector<InstanceId> touched_union;
  std::unordered_map<InstanceId, CompCache> next_cache;
  next_cache.reserve(static_cast<std::size_t>(comps));
  for (int c = 0; c < comps; ++c) {
    const auto ids = cls.forest.component_ids(0, c);
    bool reuse = !force_all;
    if (reuse) {
      const auto it = cls.cache.find(ids.front());
      reuse = it != cls.cache.end() &&
              it->second.members.size() == ids.size() &&
              std::equal(ids.begin(), ids.end(), it->second.members.begin());
      if (reuse) next_cache.emplace(ids.front(), std::move(it->second));
    }
    if (!reuse) {
      touched.push_back(c);
      touched_union.insert(touched_union.end(), ids.begin(), ids.end());
    }
  }
  report.total_components += comps;
  report.touched_components += static_cast<int>(touched.size());
  report.touched_instances +=
      static_cast<std::int64_t>(touched_union.size());

  if (!touched.empty()) {
    TRACE_SPAN2("online", "resolve", "components", touched.size(),
                "instances", touched_union.size());
    SolverConfig cfg = config_.solver;
    cfg.rule = cls.rule;
    cfg.keep_stack = true;
    cfg.keep_lhs = true;
    TwoPhaseEngine engine(problem, plan_, cfg);
    engine.restrict_to(touched_union);
    const SolveResult run = engine.run_warm(params);

    std::vector<int> slot(static_cast<std::size_t>(comps), -1);
    std::vector<CompCache> fresh(touched.size());
    for (std::size_t s = 0; s < touched.size(); ++s) {
      slot[static_cast<std::size_t>(touched[s])] = static_cast<int>(s);
      const auto ids = cls.forest.component_ids(0, touched[s]);
      CompCache& cc = fresh[s];
      cc.members.assign(ids.begin(), ids.end());
      cc.lhs.resize(ids.size());
      double lambda = 1.0;
      bool any = false;
      for (std::size_t k = 0; k < ids.size(); ++k) {
        const double lhs =
            run.final_lhs[static_cast<std::size_t>(ids[k])];
        cc.lhs[k] = lhs;
        const double level = lhs / problem.instance(ids[k]).profit;
        lambda = any ? std::min(lambda, level) : level;
        any = true;
      }
      cc.lambda = lambda;
    }
    // Split the run's stack by component.  Rows are ascending by id (=
    // ascending member rank), so each component's slice — a subsequence —
    // stays ascending; the tag rides along unchanged, because conflict-
    // disjoint components advance through the same (group, stage, step)
    // grid no matter who runs alongside them.
    for (std::size_t r = 0; r < run.raise_stack.size(); ++r) {
      const StackTag tag = run.stack_tags[r];
      for (const InstanceId i : run.raise_stack[r]) {
        CompCache& cc = fresh[static_cast<std::size_t>(
            slot[static_cast<std::size_t>(cls.forest.component_of(i))])];
        if (cc.tags.empty() || !(cc.tags.back() == tag)) {
          cc.tags.push_back(tag);
          cc.rows.emplace_back();
        }
        cc.rows.back().push_back(i);
      }
    }
    for (CompCache& cc : fresh)
      next_cache.emplace(cc.members.front(), std::move(cc));
  }

  cls.cache = std::move(next_cache);
  cls.mask = std::move(mask);
  cls.params = params;
  cls.valid = true;
}

ClassArtifacts OnlineScheduler::assemble_class(const ClassState& cls) const {
  const Problem& problem = *problem_;
  ClassArtifacts art;
  art.rule = cls.rule;
  art.final_lhs.assign(static_cast<std::size_t>(problem.num_instances()),
                       0.0);

  struct RowRef {
    StackTag tag;
    const std::vector<InstanceId>* row;
  };
  std::vector<RowRef> refs;
  const int comps = cls.forest.components_in_group(0);
  double lambda = 1.0;
  bool any = false;
  for (int c = 0; c < comps; ++c) {
    const auto ids = cls.forest.component_ids(0, c);
    const auto it = cls.cache.find(ids.front());
    TS_REQUIRE(it != cls.cache.end());
    const CompCache& cc = it->second;
    for (std::size_t k = 0; k < cc.members.size(); ++k)
      art.final_lhs[static_cast<std::size_t>(cc.members[k])] = cc.lhs[k];
    lambda = any ? std::min(lambda, cc.lambda) : cc.lambda;
    any = true;
    for (std::size_t r = 0; r < cc.rows.size(); ++r)
      refs.push_back(RowRef{cc.tags[r], &cc.rows[r]});
  }
  art.any = any;
  art.lambda = any ? lambda : 0.0;

  // Chronological order is lexicographic in (group, stage, step); within
  // one tag the concurrent components' sub-rows merge back in ascending
  // id, reproducing the cold stack row exactly.  Rows of distinct refs
  // are disjoint, so (tag, first id) is a strict total order.
  std::sort(refs.begin(), refs.end(), [](const RowRef& a, const RowRef& b) {
    if (a.tag != b.tag) return a.tag < b.tag;
    return a.row->front() < b.row->front();
  });
  for (std::size_t r = 0; r < refs.size();) {
    std::size_t e = r;
    while (e < refs.size() && refs[e].tag == refs[r].tag) ++e;
    std::vector<InstanceId> row;
    for (std::size_t k = r; k < e; ++k)
      row.insert(row.end(), refs[k].row->begin(), refs[k].row->end());
    std::sort(row.begin(), row.end());
    art.stack_tags.push_back(refs[r].tag);
    art.raise_stack.push_back(std::move(row));
    r = e;
  }

  art.solution = prune_stack(problem, art.raise_stack);
  return art;
}

OnlineSolveArtifacts OnlineScheduler::assemble() const {
  TRACE_SPAN("online", "assemble");
  OnlineSolveArtifacts out;
  out.wide = assemble_class(wide_);
  out.narrow = assemble_class(narrow_);
  combine_classes(*problem_, out);
  return out;
}

OnlineSolveArtifacts solve_cold(const Problem& problem,
                                const LayeredPlan& plan,
                                const SolverConfig& solver,
                                const std::vector<char>& live_mask) {
  TRACE_SPAN("online", "solve_cold");
  OnlineSolveArtifacts out;
  const HeightClasses classes = classify_wide_narrow(problem);
  const auto run_class = [&](RaiseRuleKind rule,
                             const std::vector<InstanceId>& class_ids) {
    ClassArtifacts art;
    art.rule = rule;
    art.final_lhs.assign(static_cast<std::size_t>(problem.num_instances()),
                         0.0);
    std::vector<InstanceId> ids;
    for (const InstanceId i : class_ids)
      if (live_mask[static_cast<std::size_t>(i)]) ids.push_back(i);
    if (ids.empty()) return art;
    SolverConfig cfg = solver;
    cfg.rule = rule;
    cfg.keep_stack = true;
    cfg.keep_lhs = true;
    TwoPhaseEngine engine(problem, plan, cfg);
    engine.restrict_to(ids);
    SolveResult run = engine.run();
    art.any = true;
    art.raise_stack = std::move(run.raise_stack);
    art.stack_tags = std::move(run.stack_tags);
    art.final_lhs = std::move(run.final_lhs);
    art.lambda = run.stats.lambda_observed;
    art.solution = prune_stack(problem, art.raise_stack);
    return art;
  };
  out.wide = run_class(RaiseRuleKind::kUnit, classes.wide_ids);
  out.narrow = run_class(RaiseRuleKind::kNarrow, classes.narrow_ids);
  combine_classes(problem, out);
  return out;
}

}  // namespace treesched
