#include "online/durable_service.hpp"

#include <cstdlib>

#include "common/prelude.hpp"
#include "common/rng.hpp"

namespace treesched {

const char* to_string(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kMidJournalAppend:
      return "mid-append";
    case CrashPoint::kAfterAppend:
      return "after-append";
    case CrashPoint::kAfterApply:
      return "after-apply";
    case CrashPoint::kMidSnapshotWrite:
      return "mid-snapshot";
    case CrashPoint::kAfterSnapshot:
      return "after-snapshot";
  }
  return "?";
}

namespace {

CrashPoint parse_crash_point(const std::string& name) {
  if (name == "none") return CrashPoint::kNone;
  if (name == "mid-append") return CrashPoint::kMidJournalAppend;
  if (name == "after-append") return CrashPoint::kAfterAppend;
  if (name == "after-apply") return CrashPoint::kAfterApply;
  if (name == "mid-snapshot") return CrashPoint::kMidSnapshotWrite;
  if (name == "after-snapshot") return CrashPoint::kAfterSnapshot;
  check_input(false,
              "crash plan: unknown point '" + name +
                  "' (expected mid-append|after-append|after-apply|"
                  "mid-snapshot|after-snapshot)");
  return CrashPoint::kNone;  // unreachable
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  check_input(used == value.size() && value.find('-') == std::string::npos,
              "crash plan: bad value for '" + key + "': '" + value + "'");
  return v;
}

// The once-per-process env hook, mirroring TREESCHED_FAULTS.
const CrashPlan& env_crash_plan() {
  static const CrashPlan plan = [] {
    const char* env = std::getenv("TREESCHED_CRASH");
    if (env == nullptr || *env == '\0') return CrashPlan{};
    return parse_crash_plan(env);
  }();
  return plan;
}

}  // namespace

CrashPlan parse_crash_plan(const std::string& spec) {
  CrashPlan plan;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find(',', at);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(at, end - at);
    at = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    check_input(eq != std::string::npos,
                "crash plan: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "point") {
      plan.point = parse_crash_point(value);
    } else if (key == "batch") {
      plan.batch = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else {
      check_input(false, "crash plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

// --- the durable service ---------------------------------------------------

DurableOnlineService::DurableOnlineService(OnlineConfig /*config*/,
                                           DurabilityConfig durability)
    : durability_(std::move(durability)),
      store_(durability_.snapshot_base.empty()
                 ? durability_.journal_path + ".snap"
                 : durability_.snapshot_base) {
  check_input(!durability_.journal_path.empty(),
              "durable service: journal path is required");
  check_input(durability_.snapshot_every >= 0,
              "durable service: snapshot_every must be >= 0");
  if (!durability_.crash.armed()) durability_.crash = env_crash_plan();
}

DurableOnlineService::DurableOnlineService(const Problem& base,
                                           OnlineConfig config,
                                           DurabilityConfig durability)
    : DurableOnlineService(config, std::move(durability)) {
  // Fresh start: the journal restarts at seq 0, so any surviving
  // snapshot belongs to a *different* event history — clear both slots.
  store_.reset();
  journal_.emplace(Journal::create(durability_.journal_path));
  scheduler_ = std::make_unique<OnlineScheduler>(base, std::move(config));
}

DurableOnlineService DurableOnlineService::recover(const Problem& base,
                                                   OnlineConfig config,
                                                   DurabilityConfig durability,
                                                   RecoveryReport* report) {
  DurableOnlineService service(config, std::move(durability));
  RecoveryReport rec;

  SchedulerSnapshot snap;
  std::string note;
  const bool have_snapshot = service.store_.load_newest(snap, &note);
  rec.snapshot_loaded = have_snapshot;
  rec.snapshot_batches = have_snapshot ? snap.batches_applied : 0;
  rec.note = note;

  JournalReplay replay = replay_journal(service.durability_.journal_path);
  rec.journal_torn = replay.torn;
  if (replay.torn) rec.note += "; journal: " + replay.diagnostic;

  // The WAL order (append before apply, snapshot after apply) makes the
  // snapshot's cursor a prefix of the journal's valid records; anything
  // else means the files belong to different runs.
  check_input(rec.snapshot_batches <= replay.next_seq,
              "recover: snapshot is ahead of the journal (" +
                  std::to_string(rec.snapshot_batches) + " > " +
                  std::to_string(replay.next_seq) +
                  ") — mismatched journal/snapshot files");

  if (have_snapshot)
    service.scheduler_ =
        std::make_unique<OnlineScheduler>(base, config, snap);
  else
    service.scheduler_ = std::make_unique<OnlineScheduler>(base, config);

  // Replay the journal suffix.  Replayed batches are NOT re-journaled:
  // they are already durable (that is what makes replay idempotent
  // across repeated crashes during recovery).
  for (std::uint32_t seq = rec.snapshot_batches; seq < replay.next_seq;
       ++seq) {
    service.scheduler_->step(
        replay.batches[static_cast<std::size_t>(seq)]);
    ++rec.replayed;
  }
  TS_REQUIRE(service.batches_applied() == replay.next_seq);

  // Truncate the torn tail (if any) and resume appending after it.
  service.journal_.emplace(
      Journal::resume(service.durability_.journal_path, replay));

  if (report != nullptr) *report = rec;
  return service;
}

bool DurableOnlineService::crash_due(CrashPoint point,
                                     std::uint32_t batch) const {
  return durability_.crash.point == point && durability_.crash.batch == batch;
}

std::size_t DurableOnlineService::torn_prefix(std::size_t image_len) const {
  // Deterministic strict prefix: everything from an empty write to all
  // but the last byte, drawn from the plan seed and the crash site.
  SplitMix64 mix(durability_.crash.seed ^
                 (static_cast<std::uint64_t>(durability_.crash.batch) << 32));
  return static_cast<std::size_t>(mix.next() % image_len);
}

OnlineBatchReport DurableOnlineService::step(const EventBatch& batch) {
  const std::uint32_t seq = journal_->next_seq();
  TS_REQUIRE(seq == batches_applied());  // journal and state in lockstep

  if (crash_due(CrashPoint::kMidJournalAppend, seq)) {
    std::vector<std::uint8_t> image;
    const std::size_t len = encode_journal_record(batch, seq, image);
    journal_->append_torn(batch, torn_prefix(len));
    throw CrashInjected(CrashPoint::kMidJournalAppend, seq);
  }
  journal_->append(batch);
  if (crash_due(CrashPoint::kAfterAppend, seq))
    throw CrashInjected(CrashPoint::kAfterAppend, seq);

  OnlineBatchReport report = scheduler_->step(batch);
  if (crash_due(CrashPoint::kAfterApply, seq))
    throw CrashInjected(CrashPoint::kAfterApply, seq);

  maybe_snapshot();
  if (crash_due(CrashPoint::kAfterSnapshot, seq))
    throw CrashInjected(CrashPoint::kAfterSnapshot, seq);
  return report;
}

void DurableOnlineService::maybe_snapshot() {
  if (durability_.snapshot_every <= 0) return;
  const std::uint32_t applied = batches_applied();
  if (applied % static_cast<std::uint32_t>(durability_.snapshot_every) != 0)
    return;
  const SchedulerSnapshot snap = scheduler_->capture();
  // The crash fires on the batch that *triggered* the snapshot.
  if (crash_due(CrashPoint::kMidSnapshotWrite, applied - 1)) {
    const std::size_t image_len = encode_snapshot(snap).size();
    store_.write(snap, torn_prefix(image_len));
    throw CrashInjected(CrashPoint::kMidSnapshotWrite, applied - 1);
  }
  store_.write(snap);
}

}  // namespace treesched
