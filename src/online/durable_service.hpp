// DurableOnlineService: the OnlineScheduler behind a write-ahead journal
// and versioned snapshots, plus the seeded crash-injection harness that
// proves the recovery path.
//
// WAL discipline per batch:
//   1. append the batch to the journal and flush — the batch is durable
//      *before* any state changes;
//   2. apply it (OnlineScheduler::step);
//   3. every snapshot_every applied batches, capture + write a snapshot
//      through the A/B SnapshotStore.
// Recovery therefore never needs more than: newest valid snapshot +
// replay of the journal records with seq >= its batches_applied.  A
// torn journal tail is truncated (it was never applied — the WAL order
// guarantees the scheduler state is a prefix of the journal); a torn
// snapshot slot falls back to the other slot, or to a full journal
// replay when both are gone.  tests/test_recovery.cpp holds the
// recovered state to exact (==) equality with the uninterrupted run at
// every seeded crash point.
//
// CrashPlan is FaultPlan's process-level sibling: a named crash point, a
// batch index to fire at, and a seed that picks the torn-write length —
// fully deterministic, replayable from the spec string alone
// ("point=mid-append,batch=3,seed=7").  A firing plan throws
// CrashInjected *after* the configured partial write reaches disk, so a
// test (or the CLI) observes exactly what a kill -9 at that instant
// leaves behind.  The TREESCHED_CRASH environment variable (read once
// per process, same hook pattern as TREESCHED_FAULTS) supplies the plan
// for services constructed without an explicit one — CI crashes the CLI
// without the CLI knowing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "online/journal.hpp"
#include "online/online_scheduler.hpp"
#include "online/snapshot.hpp"

namespace treesched {

// --- crash injection -------------------------------------------------------

enum class CrashPoint {
  kNone,             // never fires
  kMidJournalAppend, // torn journal write; the batch was never applied
  kAfterAppend,      // journal has the batch, crash before apply
  kAfterApply,       // applied, crash before the snapshot decision
  kMidSnapshotWrite, // torn snapshot slot; journal + state are complete
  kAfterSnapshot,    // clean crash right after a snapshot write
};

const char* to_string(CrashPoint point);

struct CrashPlan {
  CrashPoint point = CrashPoint::kNone;
  // Absolute batch sequence number (== journal seq) the plan fires at.
  std::uint32_t batch = 0;
  // Picks the torn-write prefix length at the two mid-write points.
  std::uint64_t seed = 1;

  bool armed() const { return point != CrashPoint::kNone; }
};

// Parses "point=mid-append|after-append|after-apply|mid-snapshot|
// after-snapshot,batch=N,seed=S" (any order; batch and seed optional).
// The empty string is the unarmed plan.  Throws std::invalid_argument on
// unknown keys, unknown point names or unparsable values — this is the
// TREESCHED_CRASH / --crash= format.
CrashPlan parse_crash_plan(const std::string& spec);

// Thrown when an armed plan fires: the simulated kill -9.  Whatever the
// plan tore is already on disk; the process is expected to unwind and
// restart via DurableOnlineService::recover.
struct CrashInjected : std::runtime_error {
  CrashInjected(CrashPoint point_, std::uint32_t batch_)
      : std::runtime_error(std::string("crash injected: ") +
                           to_string(point_) + " at batch " +
                           std::to_string(batch_)),
        point(point_),
        batch(batch_) {}
  CrashPoint point;
  std::uint32_t batch;
};

// --- the durable service ---------------------------------------------------

struct DurabilityConfig {
  std::string journal_path;  // required
  // Snapshot slot base; empty means journal_path + ".snap" (slots get
  // ".a"/".b" appended by SnapshotStore).
  std::string snapshot_base;
  // Capture + write a snapshot every N applied batches; 0 disables
  // snapshots (recovery replays the whole journal).
  int snapshot_every = 0;
  // Explicit crash plan; when unarmed, TREESCHED_CRASH (read once per
  // process) supplies one — explicit plans are never overridden, so
  // env-driven CI crash runs leave plan-pinning tests untouched.
  CrashPlan crash;
};

struct RecoveryReport {
  bool snapshot_loaded = false;
  std::uint32_t snapshot_batches = 0;  // batches_applied of the snapshot
  std::uint32_t replayed = 0;          // journal records re-applied
  bool journal_torn = false;           // a torn tail was truncated
  std::string note;                    // human-readable summary
};

class DurableOnlineService {
 public:
  // Fresh start: truncates the journal and clears both snapshot slots
  // (stale snapshots from a previous journal would otherwise pair with
  // the new log).  `base`/`config` as for OnlineScheduler.
  DurableOnlineService(const Problem& base, OnlineConfig config,
                       DurabilityConfig durability);

  // Crash recovery: loads the newest valid snapshot (if any), truncates
  // the journal's torn tail, replays the journal suffix through the
  // scheduler, and resumes appending.  `base`/`config` must equal the
  // crashed service's (the durable state holds only the churn).
  static DurableOnlineService recover(const Problem& base,
                                      OnlineConfig config,
                                      DurabilityConfig durability,
                                      RecoveryReport* report = nullptr);

  // Journal-append (durable first), apply, maybe snapshot.  Throws
  // CrashInjected when the armed plan fires at this batch.
  OnlineBatchReport step(const EventBatch& batch);

  OnlineScheduler& scheduler() { return *scheduler_; }
  const OnlineScheduler& scheduler() const { return *scheduler_; }
  // == the journal seq of the next batch to feed in; a resumed trace
  // skips this many leading batches.
  std::uint32_t batches_applied() const {
    return static_cast<std::uint32_t>(scheduler_->batches_applied());
  }
  std::int64_t journal_bytes_written() const {
    return journal_->bytes_written();
  }

 private:
  DurableOnlineService(OnlineConfig config, DurabilityConfig durability);

  // True when the plan fires at `batch` for `point`.
  bool crash_due(CrashPoint point, std::uint32_t batch) const;
  // Deterministic torn-write prefix length in [0, image_len).
  std::size_t torn_prefix(std::size_t image_len) const;
  void maybe_snapshot();

  DurabilityConfig durability_;
  SnapshotStore store_;
  std::optional<Journal> journal_;
  std::unique_ptr<OnlineScheduler> scheduler_;
};

}  // namespace treesched
