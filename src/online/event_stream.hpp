// Online arrival/departure event model: the demand side of the online
// scheduling service.  A traffic spec (arrival law, rate, per-tenant
// profit classes, lifetime law) plus a base TreeScenarioSpec is expanded
// into a deterministic trace of timestamped event batches — each batch
// carrying the demands that arrived and the demand keys that departed
// within one batching interval.  The OnlineScheduler consumes batches;
// everything here is pure sampling layered on workload/demand_gen's
// DemandSampler, so traces are reproducible by seed.
//
// The online setting this models is the service regime of the paper's
// tree scheduling problem (and of the constant-competitive online
// packet-scheduling line of work, PAPERS.md): demands arrive over time,
// hold their bandwidth for an exponential lifetime, and leave; the
// solver must sustain the churn, not one batch solve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/demand_gen.hpp"
#include "workload/scenario.hpp"

namespace treesched {

// A demand's identity across its lifetime in the service.  Instance and
// demand ids are per-Problem artifacts (they shift on compaction); the
// key never does.
using DemandKey = std::int64_t;

enum class ArrivalLaw {
  kPoisson,  // homogeneous Poisson process at `rate`
  kBursty,   // on/off: rate * burst_factor during bursts, rate otherwise
  kDiurnal,  // sinusoidal rate modulation with period `diurnal_period`
};

const char* to_string(ArrivalLaw law);

// A tenant class: a share of the arrival stream with its own profit
// scaling and expected lifetime.  Shares are normalized over the spec's
// tenant list; an empty list means one anonymous tenant.
struct TenantClass {
  std::string name = "default";
  double rate_share = 1.0;     // relative weight within the tenant mix
  double profit_scale = 1.0;   // multiplies the sampled profit
  double mean_lifetime = 8.0;  // exponential lifetime mean (time units)
};

struct OnlineTrafficSpec {
  ArrivalLaw arrivals = ArrivalLaw::kPoisson;
  double rate = 8.0;            // mean arrivals per time unit
  double burst_factor = 4.0;    // kBursty: rate multiplier inside a burst
  double burst_fraction = 0.2;  // kBursty: fraction of time in bursts
  double diurnal_period = 32.0;  // kDiurnal: modulation period
  double batch_interval = 1.0;   // events per batch = one interval
  int num_batches = 16;
  int initial_population = 0;  // demands alive at t = 0
  std::vector<TenantClass> tenants;
  std::uint64_t seed = 1;
};

// One arrival: the sampled demand plus its service identity.
struct OnlineArrival {
  DemandKey key = 0;
  int tenant = 0;
  DemandDraw draw;
};

// One batching interval's worth of events, in time order.
struct EventBatch {
  double time = 0.0;  // end of the interval
  std::vector<OnlineArrival> arrivals;
  std::vector<DemandKey> departures;
};

// A churn-aware scenario: the static base (topology, capacities, demand
// laws) plus the traffic layered on top.  The base's demand count seeds
// the initial population when traffic.initial_population is 0.
struct OnlineScenarioSpec {
  TreeScenarioSpec base;
  OnlineTrafficSpec traffic;
};

std::string describe(const OnlineScenarioSpec& spec);

// Expands the spec into the full deterministic event trace.  `problem`
// supplies the topology the demand laws sample against (it may be the
// finalized base problem); initial-population demands get keys
// [0, initial) and their departures are scheduled like everyone else's.
std::vector<EventBatch> make_event_trace(const Problem& problem,
                                         const DemandGenConfig& demand_cfg,
                                         const OnlineTrafficSpec& traffic);

}  // namespace treesched
