// OnlineScheduler: the incremental warm-start re-solve service.
//
// The batch pipeline solves a static Problem once; the service regime
// replays an arrival/departure event stream (online/event_stream.hpp)
// and must keep the two-phase solution current at every batch.  The
// scheduler exploits the engine's decomposition invariant: conflict
// components of a height class (instances connected by shared edges or
// shared demands across ALL plan groups) evolve fully independently
// under a fixed stage schedule, so a batch only has to re-solve the
// components its events actually touched.
//
// Per height class (wide/kUnit, narrow/kNarrow — the Section 6 split)
// the scheduler keeps:
//  * a run-persistent ComponentForest over a single-group plan (the
//    cross-group conflict components), revised per batch by
//    ComponentForest::update — add/remove of member instances with the
//    untouched groups' spans sliced straight across;
//  * a per-component cache: member ids, the component's raise-stack
//    rows with their (group, stage, step) tags, the members' final
//    DualShard LHS and the component's observed lambda.
// A component whose member set is unchanged by the batch (and whose
// class-wide stage parameters did not move) is *skipped*: its cached
// rows, duals and lambda are exactly what a cold solve would recompute.
// Everything else forms the touched set, re-solved in ONE restricted
// TwoPhaseEngine::run_warm call seeded with the pinned class schedule.
//
// assemble() splices the cached components back into full per-class
// artifacts (stack rows merged by tag, ascending ids within a tag — the
// chronological order of the cold run) and prunes; solve_cold() is the
// from-scratch reference.  tests/test_online.cpp holds the two to exact
// (==) equality on stack, tags, selected sets, lambda and per-shard LHS
// after every batch, across threads {1, 4}.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "decomp/layered.hpp"
#include "framework/component_forest.hpp"
#include "framework/two_phase.hpp"
#include "model/problem.hpp"
#include "online/event_stream.hpp"
#include "online/snapshot.hpp"

namespace treesched {

enum class OnlineSolveMode {
  kWarm,  // incremental: skip untouched components
  kCold,  // re-solve everything each batch (the baseline arm)
};

struct OnlineConfig {
  // Engine configuration for the per-class runs; rule, keep_stack and
  // keep_lhs are overridden per class by the scheduler.
  SolverConfig solver;
  DecompKind decomp = DecompKind::kRootFixing;
  OnlineSolveMode mode = OnlineSolveMode::kWarm;
  // Tombstoned (departed) demands stay in the Problem so instance ids
  // stay stable; once dead > compaction_slack * live (and more than the
  // floor), the records are compacted and every cache rebuilt cold.
  double compaction_slack = 4.0;
  int compaction_floor = 64;
};

// What one step() did, for throughput reporting.
struct OnlineBatchReport {
  int batch = 0;
  double time = 0.0;
  int arrivals = 0;
  int departures = 0;
  int live_demands = 0;
  int live_instances = 0;
  // Across both height classes: components re-solved this batch vs the
  // total, and the instances inside them (the re-solve working set).
  int touched_components = 0;
  int total_components = 0;
  std::int64_t touched_instances = 0;
  bool compacted = false;
  bool params_changed = false;  // a class schedule moved => cold re-solve
  std::int64_t solve_ns = 0;    // problem rebuild + forest + engine time
  std::int64_t rebuild_ns = 0;  // problem + plan rebuild share of solve_ns
  std::int64_t refresh_ns = 0;  // forest + engine share of solve_ns
};

// Per-class output equivalent to a cold restricted engine run with
// keep_stack/keep_lhs: what the parity suite compares with ==.
struct ClassArtifacts {
  RaiseRuleKind rule = RaiseRuleKind::kUnit;
  bool any = false;  // class has live instances
  std::vector<std::vector<InstanceId>> raise_stack;
  std::vector<StackTag> stack_tags;
  std::vector<double> final_lhs;  // per instance id; 0.0 outside class
  double lambda = 0.0;
  Solution solution;  // prune_stack over the class stack
};

struct OnlineSolveArtifacts {
  ClassArtifacts wide, narrow;
  Solution solution;  // better-of-per-network combination
  double profit = 0.0;
  double lambda = 0.0;
};

class OnlineScheduler {
 public:
  // `base` supplies the topology, capacities and the initial resident
  // demands (adopted as live records that never depart; the event
  // stream's own initial population arrives via its batch 0).
  OnlineScheduler(const Problem& base, OnlineConfig config);

  // Restores a captured scheduler.  `base` and `config` must be the ones
  // the captured run was constructed with (the snapshot holds only the
  // churn state; topology, capacities and policy come from the caller —
  // basic shape mismatches throw).  The materialized problem, plans and
  // per-class forests are rebuilt deterministically from the snapshot's
  // records; the per-component caches are installed verbatim after being
  // cross-checked against the rebuilt forest's partition.
  OnlineScheduler(const Problem& base, OnlineConfig config,
                  const SchedulerSnapshot& snap);

  // Captures the full warm-start state: restoring the capture yields a
  // scheduler whose assemble() and future step()s are ==-identical to
  // this one's (tests/test_recovery.cpp pins it).
  SchedulerSnapshot capture() const;

  // Applies one event batch and re-solves the touched components.
  OnlineBatchReport step(const EventBatch& batch);

  // Splices the per-component caches into full per-class artifacts and
  // the combined solution.
  OnlineSolveArtifacts assemble() const;

  // The current materialized problem/plan and liveness (for the cold
  // reference and the feasibility report).
  const Problem& problem() const { return *problem_; }
  const LayeredPlan& plan() const { return plan_; }
  std::vector<char> live_mask() const;  // per instance id
  int live_demands() const { return live_demands_; }
  int batches_applied() const { return batches_applied_; }

 private:
  // One demand's whole service lifetime; the record index is its demand
  // id in the materialized problem until a compaction renumbers.
  struct DemandRecord {
    VertexId u = kNoVertex;
    VertexId v = kNoVertex;
    Profit profit = 0.0;
    Height height = 1.0;
    std::vector<NetworkId> access;  // empty = all networks
    DemandKey key = 0;
    bool alive = true;
  };

  // Cached state of one conflict component (identified by its member
  // list; keyed by its smallest member id).
  struct CompCache {
    std::vector<InstanceId> members;               // ascending ids
    std::vector<std::vector<InstanceId>> rows;     // this comp's stack rows
    std::vector<StackTag> tags;                    // parallel to rows
    std::vector<double> lhs;                       // parallel to members
    double lambda = 1.0;                           // min level over members
  };

  struct ClassState {
    RaiseRuleKind rule = RaiseRuleKind::kUnit;
    std::vector<char> mask;  // live AND in-class, per instance id
    StageParams params;
    ComponentForest forest;
    std::unordered_map<InstanceId, CompCache> cache;
    bool valid = false;  // false => next refresh re-solves everything
  };

  void adopt_topology(const Problem& base);
  void capture_class(const ClassState& cls, ClassSnapshot& out) const;
  void restore_class(ClassState& cls, const ClassSnapshot& snap);
  void rebuild_problem();
  void compact();
  // Re-solves the class's touched components against the current
  // problem/plan; returns via the report fields.
  void refresh_class(ClassState& cls, OnlineBatchReport& report);
  ClassArtifacts assemble_class(const ClassState& cls) const;

  OnlineConfig config_;
  // Immutable topology the per-batch problems are rebuilt over — shared
  // with the base (and every materialized problem), never copied.
  VertexId num_vertices_ = 0;
  std::shared_ptr<const std::vector<TreeNetwork>> networks_;
  std::vector<Capacity> capacities_;  // per global edge of the base
  // Tree decompositions depend only on the topology: computed once, the
  // per-batch plan rebuild is just the per-instance group/critical pass.
  std::vector<TreeDecomposition> decomps_;

  std::vector<DemandRecord> records_;  // index = demand id
  std::unordered_map<DemandKey, int> index_of_key_;
  int live_demands_ = 0;
  int dead_demands_ = 0;
  int batches_applied_ = 0;

  std::optional<Problem> problem_;
  LayeredPlan plan_;
  // Single-group plan over all instances: the cross-group conflict
  // components the forests partition.
  LayeredPlan forest_plan_;

  ClassState wide_, narrow_;
};

// Cold reference: per-class restricted engine runs (keep_stack/keep_lhs)
// over live AND in-class instances of `problem`, combined per network —
// exactly what OnlineScheduler::assemble() must reproduce field for
// field.  `solver` is the same base config the scheduler was given.
OnlineSolveArtifacts solve_cold(const Problem& problem,
                                const LayeredPlan& plan,
                                const SolverConfig& solver,
                                const std::vector<char>& live_mask);

}  // namespace treesched
