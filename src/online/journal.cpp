#include "online/journal.hpp"

#include <filesystem>

#include "common/prelude.hpp"
#include "io/framing.hpp"

namespace treesched {

namespace {

void fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

// Bounds a decoded element count: it must be non-negative and the
// elements' minimum footprint must fit in the remaining bytes, so a
// garbage count can never drive an allocation past the buffer size.
bool count_fits(std::span<const std::uint8_t> buf, std::size_t offset,
                std::uint32_t count, std::size_t min_elem_bytes) {
  return static_cast<std::size_t>(count) <=
         (buf.size() - offset) / min_elem_bytes;
}

}  // namespace

std::size_t encode_event_batch(const EventBatch& batch,
                               std::vector<std::uint8_t>& out) {
  const std::size_t before = out.size();
  put_f64(out, batch.time);
  put_u32(out, static_cast<std::uint32_t>(batch.arrivals.size()));
  for (const OnlineArrival& a : batch.arrivals) {
    put_i64(out, a.key);
    put_i32(out, a.tenant);
    put_i32(out, a.draw.u);
    put_i32(out, a.draw.v);
    put_f64(out, a.draw.profit);
    put_f64(out, a.draw.height);
    put_u32(out, static_cast<std::uint32_t>(a.draw.access.size()));
    for (const NetworkId n : a.draw.access) put_i32(out, n);
  }
  put_u32(out, static_cast<std::uint32_t>(batch.departures.size()));
  for (const DemandKey k : batch.departures) put_i64(out, k);
  return out.size() - before;
}

bool decode_event_batch(std::span<const std::uint8_t> buf,
                        std::size_t& offset, EventBatch& out,
                        std::string* error) {
  std::size_t at = offset;
  EventBatch batch;
  std::uint32_t arrival_count = 0;
  if (!get_f64(buf, at, batch.time) || !get_u32(buf, at, arrival_count)) {
    fail(error, "event batch header truncated");
    return false;
  }
  // Each arrival is at least 40 bytes (key + tenant + u + v + profit +
  // height + access count).
  if (!count_fits(buf, at, arrival_count, 40)) {
    fail(error, "event batch arrival count exceeds remaining bytes");
    return false;
  }
  batch.arrivals.resize(arrival_count);
  for (OnlineArrival& a : batch.arrivals) {
    std::uint32_t access_count = 0;
    if (!get_i64(buf, at, a.key) || !get_i32(buf, at, a.tenant) ||
        !get_i32(buf, at, a.draw.u) || !get_i32(buf, at, a.draw.v) ||
        !get_f64(buf, at, a.draw.profit) ||
        !get_f64(buf, at, a.draw.height) ||
        !get_u32(buf, at, access_count)) {
      fail(error, "event batch arrival truncated");
      return false;
    }
    if (a.tenant < 0 || a.draw.u < 0 || a.draw.v < 0) {
      fail(error, "event batch arrival corrupt (negative field)");
      return false;
    }
    if (!count_fits(buf, at, access_count, 4)) {
      fail(error, "event batch access count exceeds remaining bytes");
      return false;
    }
    a.draw.access.resize(access_count);
    for (NetworkId& n : a.draw.access) {
      if (!get_i32(buf, at, n)) {
        fail(error, "event batch access list truncated");
        return false;
      }
      if (n < 0) {
        fail(error, "event batch access list corrupt (negative network)");
        return false;
      }
    }
  }
  std::uint32_t departure_count = 0;
  if (!get_u32(buf, at, departure_count)) {
    fail(error, "event batch departure count truncated");
    return false;
  }
  if (!count_fits(buf, at, departure_count, 8)) {
    fail(error, "event batch departure count exceeds remaining bytes");
    return false;
  }
  batch.departures.resize(departure_count);
  for (DemandKey& k : batch.departures) {
    if (!get_i64(buf, at, k)) {
      fail(error, "event batch departure list truncated");
      return false;
    }
  }
  out = std::move(batch);
  offset = at;
  return true;
}

std::size_t encode_journal_record(const EventBatch& batch, std::uint32_t seq,
                                  std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = begin_crc_frame(out);
  encode_event_batch(batch, out);
  return end_crc_frame(out, frame_start, seq);
}

// --- replay ----------------------------------------------------------------

JournalReplay replay_journal_bytes(std::span<const std::uint8_t> bytes) {
  JournalReplay replay;
  replay.file_exists = true;
  std::size_t offset = 0;
  std::string error;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kCrcFrameHeaderBytes) {
      replay.torn = true;
      replay.diagnostic = "torn tail: partial frame header";
      break;
    }
    // Parse the payload structurally to learn the frame extent, then
    // verify the checksum over exactly those bytes (same discipline as
    // the wire's decode_frame).
    EventBatch batch;
    std::size_t payload_end = offset + kCrcFrameHeaderBytes;
    if (!decode_event_batch(bytes, payload_end, batch, &error)) {
      replay.torn = true;
      replay.diagnostic = "torn tail: " + error;
      break;
    }
    std::uint32_t seq = 0;
    if (!verify_crc_frame(bytes, offset, payload_end - offset, seq, &error)) {
      replay.torn = true;
      replay.diagnostic = "torn tail: " + error;
      break;
    }
    if (seq != replay.next_seq) {
      replay.torn = true;
      replay.diagnostic = "torn tail: sequence gap (expected " +
                          std::to_string(replay.next_seq) + ", found " +
                          std::to_string(seq) + ")";
      break;
    }
    replay.batches.push_back(std::move(batch));
    replay.next_seq += 1;
    offset = payload_end;
    replay.valid_bytes = offset;
  }
  return replay;
}

JournalReplay replay_journal(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return JournalReplay{};
  std::ifstream in(path, std::ios::binary);
  check_input(in.good(), "journal: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  check_input(!in.bad(), "journal: read error on '" + path + "'");
  return replay_journal_bytes(bytes);
}

// --- writer ----------------------------------------------------------------

Journal::Journal(std::string path, std::uint32_t next_seq,
                 std::size_t keep_bytes)
    : path_(std::move(path)), next_seq_(next_seq) {
  std::error_code ec;
  if (std::filesystem::exists(path_, ec))
    std::filesystem::resize_file(path_, keep_bytes, ec);
  out_.open(path_, std::ios::binary | std::ios::in | std::ios::out |
                       std::ios::app);
  if (!out_.is_open()) {
    // First open on a fresh path: create it.
    out_.open(path_, std::ios::binary | std::ios::out);
  }
  check_input(out_.is_open(), "journal: cannot open '" + path_ + "'");
}

Journal Journal::create(const std::string& path) {
  return Journal(path, 0, 0);
}

Journal Journal::resume(const std::string& path,
                        const JournalReplay& replay) {
  return Journal(path, replay.next_seq, replay.valid_bytes);
}

void Journal::write_and_flush(const std::uint8_t* data, std::size_t size) {
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  out_.flush();
  check_input(out_.good(), "journal: write failed on '" + path_ + "'");
  bytes_written_ += static_cast<std::int64_t>(size);
}

std::size_t Journal::append(const EventBatch& batch) {
  scratch_.clear();
  const std::size_t len = encode_journal_record(batch, next_seq_, scratch_);
  write_and_flush(scratch_.data(), len);
  next_seq_ += 1;
  return len;
}

void Journal::append_torn(const EventBatch& batch, std::size_t bytes) {
  scratch_.clear();
  const std::size_t len = encode_journal_record(batch, next_seq_, scratch_);
  TS_REQUIRE(bytes < len);  // must be a strict prefix: a *torn* append
  write_and_flush(scratch_.data(), bytes);
}

}  // namespace treesched
