#include "online/event_stream.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

namespace treesched {

const char* to_string(ArrivalLaw law) {
  switch (law) {
    case ArrivalLaw::kPoisson:
      return "poisson";
    case ArrivalLaw::kBursty:
      return "bursty";
    case ArrivalLaw::kDiurnal:
      return "diurnal";
  }
  return "?";
}

std::string describe(const OnlineScenarioSpec& spec) {
  std::string s = describe(spec.base);
  s += " | ";
  s += to_string(spec.traffic.arrivals);
  s += " rate=" + std::to_string(spec.traffic.rate);
  s += " batches=" + std::to_string(spec.traffic.num_batches);
  s += " tenants=" +
       std::to_string(std::max<std::size_t>(spec.traffic.tenants.size(), 1));
  return s;
}

namespace {

inline constexpr double kTwoPi = 6.28318530717958647692;

// Exponential draw by inversion: uniform() is in [0, 1), so the log
// argument stays positive.
double exponential(double mean, Rng& rng) {
  return -mean * std::log(1.0 - rng.uniform());
}

// Bursts repeat on a fixed cycle (8 batching intervals): the first
// burst_fraction of every cycle runs at rate * burst_factor.
bool in_burst(double t, const OnlineTrafficSpec& traffic) {
  const double cycle = 8.0 * traffic.batch_interval;
  const double phase = t - cycle * std::floor(t / cycle);
  return phase < traffic.burst_fraction * cycle;
}

// Instantaneous arrival rate lambda(t) and a dominating constant for the
// thinning sampler below.
double rate_at(double t, const OnlineTrafficSpec& traffic) {
  switch (traffic.arrivals) {
    case ArrivalLaw::kPoisson:
      return traffic.rate;
    case ArrivalLaw::kBursty:
      return in_burst(t, traffic) ? traffic.rate * traffic.burst_factor
                                  : traffic.rate;
    case ArrivalLaw::kDiurnal:
      return traffic.rate *
             (1.0 + std::sin(kTwoPi * t / traffic.diurnal_period));
  }
  return traffic.rate;
}

double max_rate(const OnlineTrafficSpec& traffic) {
  switch (traffic.arrivals) {
    case ArrivalLaw::kPoisson:
      return traffic.rate;
    case ArrivalLaw::kBursty:
      return traffic.rate * std::max(traffic.burst_factor, 1.0);
    case ArrivalLaw::kDiurnal:
      return 2.0 * traffic.rate;
  }
  return traffic.rate;
}

}  // namespace

std::vector<EventBatch> make_event_trace(const Problem& problem,
                                         const DemandGenConfig& demand_cfg,
                                         const OnlineTrafficSpec& traffic) {
  TS_REQUIRE(traffic.rate > 0.0);
  TS_REQUIRE(traffic.batch_interval > 0.0);
  TS_REQUIRE(traffic.num_batches >= 0);
  Rng rng(traffic.seed);
  const DemandSampler sampler(problem, demand_cfg);

  // Normalized tenant mix (empty spec = one anonymous tenant).
  std::vector<TenantClass> tenants = traffic.tenants;
  if (tenants.empty()) tenants.push_back(TenantClass{});
  double share_sum = 0.0;
  for (const TenantClass& t : tenants) {
    TS_REQUIRE(t.rate_share > 0.0 && t.mean_lifetime > 0.0);
    share_sum += t.rate_share;
  }
  const auto draw_tenant = [&]() {
    double u = rng.uniform(0.0, share_sum);
    for (std::size_t i = 0; i + 1 < tenants.size(); ++i) {
      if (u < tenants[i].rate_share) return static_cast<int>(i);
      u -= tenants[i].rate_share;
    }
    return static_cast<int>(tenants.size()) - 1;
  };

  // Departures: min-heap of (time, key), scheduled at arrival.
  using Departure = std::pair<double, DemandKey>;
  std::priority_queue<Departure, std::vector<Departure>,
                      std::greater<Departure>>
      departures;
  DemandKey next_key = 0;

  const auto make_arrival = [&](double now) {
    OnlineArrival arrival;
    arrival.key = next_key++;
    arrival.tenant = draw_tenant();
    arrival.draw = sampler.next(rng);
    arrival.draw.profit *= tenants[static_cast<std::size_t>(arrival.tenant)]
                               .profit_scale;
    departures.emplace(
        now + exponential(tenants[static_cast<std::size_t>(arrival.tenant)]
                              .mean_lifetime,
                          rng),
        arrival.key);
    return arrival;
  };

  // Batch 0 is the initial population (time 0, no departures yet); the
  // churn batches follow.
  std::vector<EventBatch> trace;
  trace.reserve(static_cast<std::size_t>(traffic.num_batches) + 1);
  EventBatch& initial = trace.emplace_back();
  initial.time = 0.0;
  for (int k = 0; k < traffic.initial_population; ++k)
    initial.arrivals.push_back(make_arrival(0.0));

  // Arrivals by thinning against the dominating constant rate: candidate
  // points at max_rate, each kept with probability lambda(t) / max_rate.
  const double lambda_max = max_rate(traffic);
  const double horizon =
      traffic.batch_interval * static_cast<double>(traffic.num_batches);
  double t = exponential(1.0 / lambda_max, rng);
  for (int b = 0; b < traffic.num_batches; ++b) {
    EventBatch& batch = trace.emplace_back();
    const double end =
        traffic.batch_interval * static_cast<double>(b + 1);
    batch.time = end;
    while (t <= end && t <= horizon) {
      if (rng.chance(rate_at(t, traffic) / lambda_max))
        batch.arrivals.push_back(make_arrival(t));
      t += exponential(1.0 / lambda_max, rng);
    }
    while (!departures.empty() && departures.top().first <= end) {
      batch.departures.push_back(departures.top().second);
      departures.pop();
    }
  }
  return trace;
}

}  // namespace treesched
