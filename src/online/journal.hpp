// Append-only write-ahead journal of online event batches.
//
// The durable half of the online service's WAL discipline: every
// EventBatch is framed exactly like the PR 8 recovery sublayer —
//   [u32 crc32 | u32 seq | payload]
// via the shared io/framing.hpp helpers, appended and flushed *before*
// the scheduler applies it.  `seq` is the batch's absolute index in the
// service's event stream, so the journal is also the replay cursor: a
// snapshot taken after batch k-1 is resumed by replaying the journal
// suffix with seq >= k.
//
// The reader never trusts the file.  Each record's payload is parsed
// structurally (every count bounds-checked against the remaining bytes
// before any allocation) to learn the frame extent, then the checksum is
// verified over exactly those bytes, then the sequence word must be the
// next expected one.  The first record that fails any of these ends the
// replay: everything after it is a *torn tail* — the partial flush of a
// crashed append — reported with a diagnostic and a valid-prefix length
// the writer truncates before resuming.  A torn or bit-flipped journal
// is therefore never accepted and never UB (fuzz arms in
// tests/test_fuzz.cpp drive every truncation prefix and seeded bit
// flips under the sanitizers).
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "online/event_stream.hpp"

namespace treesched {

// --- batch codec -----------------------------------------------------------
//
// Payload layout (host byte order, like the wire codec):
//   f64 time
//   u32 arrival_count, then per arrival:
//     i64 key | i32 tenant | i32 u | i32 v | f64 profit | f64 height |
//     u32 access_count | access_count x i32
//   u32 departure_count, then departure_count x i64 keys

// Appends the encoding of `batch` to `out`; returns the bytes appended.
std::size_t encode_event_batch(const EventBatch& batch,
                               std::vector<std::uint8_t>& out);

// Decodes one batch from buf[offset...], advancing `offset` past it on
// success.  On any malformed input — truncation anywhere, a count that
// cannot fit in the remaining bytes, negative counts or endpoints —
// returns false with `offset` untouched and a diagnostic in *error
// (when non-null).
bool decode_event_batch(std::span<const std::uint8_t> buf,
                        std::size_t& offset, EventBatch& out,
                        std::string* error = nullptr);

// Appends the full journal record ([crc | seq | batch payload]) for
// (batch, seq) to `out`; returns the bytes appended.
std::size_t encode_journal_record(const EventBatch& batch, std::uint32_t seq,
                                  std::vector<std::uint8_t>& out);

// --- replay ----------------------------------------------------------------

struct JournalReplay {
  // The decoded batches, in order; batches[i] carries sequence number i.
  std::vector<EventBatch> batches;
  // One past the last valid sequence number (== batches.size()).
  std::uint32_t next_seq = 0;
  // Length of the valid prefix of the file; everything beyond is torn.
  std::size_t valid_bytes = 0;
  // True when trailing bytes were discarded (torn append or corruption).
  bool torn = false;
  // Why the tail was rejected (empty when !torn).
  std::string diagnostic;
  // False when the journal file does not exist (an empty replay).
  bool file_exists = false;
};

// Replays a journal image from memory.  Never throws on bad input: the
// valid prefix is returned and the tail diagnosed.
JournalReplay replay_journal_bytes(std::span<const std::uint8_t> bytes);

// Reads and replays the journal at `path`.  A missing file is an empty
// replay with file_exists == false; an unreadable file throws
// std::invalid_argument.
JournalReplay replay_journal(const std::string& path);

// --- writer ----------------------------------------------------------------

// The append side.  Every append() encodes one record and flushes it to
// the file before returning, so a batch the scheduler has applied is
// always durable first (the WAL ordering the recovery proof needs).
class Journal {
 public:
  // Opens `path` fresh: truncates any previous content, next record is
  // seq 0.  Throws std::invalid_argument when the file cannot be opened.
  static Journal create(const std::string& path);

  // Continues `path` after recovery: truncates the torn tail reported by
  // `replay` (so the file is exactly replay.valid_bytes long again) and
  // appends from replay.next_seq.
  static Journal resume(const std::string& path, const JournalReplay& replay);

  Journal(Journal&&) = default;
  Journal& operator=(Journal&&) = default;

  // Appends and flushes the record for `batch` at the next sequence
  // number.  Returns the record's length in bytes.
  std::size_t append(const EventBatch& batch);

  // Crash simulation: writes only the first `bytes` bytes of the record
  // (a strict prefix) and flushes — the torn append a crash mid-write
  // leaves behind.  The sequence number is NOT advanced; the process is
  // expected to die (throw) right after.
  void append_torn(const EventBatch& batch, std::size_t bytes);

  std::uint32_t next_seq() const { return next_seq_; }
  std::int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  Journal(std::string path, std::uint32_t next_seq, std::size_t keep_bytes);

  void write_and_flush(const std::uint8_t* data, std::size_t size);

  std::string path_;
  std::ofstream out_;
  std::uint32_t next_seq_ = 0;
  std::int64_t bytes_written_ = 0;  // appended by this writer
  std::vector<std::uint8_t> scratch_;
};

}  // namespace treesched
