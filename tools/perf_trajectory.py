#!/usr/bin/env python3
"""Perf-trajectory gate: diff BENCH_*.json series against committed baselines.

Every bench binary emits a BENCH_<id>.json array of flat records (see
benchutil::emit_json).  This tool joins each current series against the
committed baseline in bench/baselines/ and enforces:

  * deterministic complexity metrics (rounds, steps, epochs, raises) may
    not regress by more than --tolerance (default 10%) on any row;
  * quality metrics (ratio: achieved vs certified bound, >= 1, lower is
    better) may not worsen by more than --tolerance;
  * timing metrics (wall_ms, steps_per_sec, *_ns) are reported but never
    gate — wall clock is machine-dependent, round counts are not;
  * series shape (row count, join keys) must match exactly: a silently
    shrunken series would otherwise look like a perf win.

Rows are joined on their non-metric fields (everything that is not a
known metric), so reordering rows is fine but dropping or re-keying them
is an error.  Boolean `*_ok` flags (mis_ok, schedule_ok: the protocol's
budget-sufficiency observations) are deliberately join keys: a flip from
1 to 0 re-keys the row and fails the gate loudly — silent budget
insufficiency cannot hide inside a tolerance.

Usage:
  tools/perf_trajectory.py --baseline-dir bench/baselines --current-dir build
Exit status 0 = no gating regressions, 1 = regression or shape mismatch.

Baseline regeneration:
  tools/perf_trajectory.py --update [names...]
copies the current run's BENCH_*.json files over the committed baselines
(all of them, or only the benches whose id contains one of the given
names, e.g. `--update f12 f13`), prints what changed, and exits 0.  Use
after an intentional perf-characteristic change, then commit the diff —
the gate itself never rewrites baselines.
"""

import argparse
import json
import os
import sys

# Metrics gated with the tolerance (higher = worse).  The suffix forms
# cover the per-arm series of the T-benches (ours_ratio, protocol_rounds,
# discovery_bytes, ...): complexity counters and quality ratios gate;
# exact floating equality across machines is NOT required for them (libm
# differences in log/pow may move last bits), which is why they are
# metrics rather than join keys.
GATED_UP = ("rounds", "steps", "epochs", "raises", "ratio")
GATED_SUFFIXES = ("_rounds", "_steps", "_messages", "_bytes", "_raises",
                  "_ratio", "_gap")
# Metrics reported but never gating.  *_speedup covers the engine
# throughput and epoch-setup ratios (f12/f13): same-machine ratios, but
# still wall-clock-derived, so informational like the _ms/_ns fields
# they come from.
INFORMATIONAL = ("wall_ms", "steps_per_sec", "profit", "speedup", "ns",
                 "time_ms")
INFO_SUFFIXES = ("_ms", "_ns", "_per_sec", "_profit", "_share", "_bound",
                 "_speedup", "_p50", "_p95")
# The obs/ flight recorder's exports (trace span totals, histogram
# summaries, registry counters) are diagnostics, never gates: they are
# wall-clock- and sampling-dependent.  Checked BEFORE the gated rules so
# e.g. a trace_rounds or hist_message_bytes field stays informational
# despite its gated-looking suffix.  The t8 durability bench's
# recovery_*/snapshot_* fields (replay counts, snapshot cursor, image
# bytes) are likewise diagnostics of the crash-recovery arm — the one
# deliberately gated durability metric is journal_bytes, which has no
# such prefix.
INFO_PREFIXES = ("trace_", "hist_", "obs_", "recovery_", "snapshot_")


def classify(field):
    if field.startswith(INFO_PREFIXES):
        return "info"
    if field in GATED_UP or field.endswith(GATED_SUFFIXES):
        return "gated"
    if field in INFORMATIONAL or field.endswith(INFO_SUFFIXES):
        return "info"
    return "key"


def row_key(row):
    return tuple(sorted((k, v) for k, v in row.items()
                        if classify(k) == "key"))


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array")
    return data


def check_series(name, baseline, current, tolerance):
    failures = []
    notes = []
    if len(current) != len(baseline):
        failures.append(f"{name}: series shape changed — {len(baseline)} "
                        f"baseline rows vs {len(current)} current rows")
    base_rows = {}
    for row in baseline:
        key = row_key(row)
        if key in base_rows:
            failures.append(f"{name}: duplicate baseline key {key}")
        base_rows[key] = row
    seen = set()
    for row in current:
        key = row_key(row)
        if key not in base_rows:
            failures.append(f"{name}: current row {dict(key)} has no "
                            f"baseline counterpart")
            continue
        seen.add(key)
        base = base_rows[key]
        for field, value in row.items():
            kind = classify(field)
            if kind == "key":
                continue
            if field not in base:
                # A gated metric the baseline lacks cannot be checked at
                # all — that is a shape error, not a pass.
                if kind == "gated":
                    failures.append(f"{name}: gated metric '{field}' absent "
                                    f"from baseline at {dict(key)} — "
                                    f"regenerate the baseline")
                continue
            ref = base[field]
            if ref is None or value is None:
                continue
            if kind == "gated":
                limit = ref * (1.0 + tolerance) + 1e-9
                if value > limit:
                    failures.append(
                        f"{name}: {field} regressed {ref:g} -> {value:g} "
                        f"(> {100 * tolerance:.0f}%) at {dict(key)}")
            elif kind == "info" and ref > 0 and value > 0:
                rel = value / ref
                if rel > 2.0 or rel < 0.5:
                    notes.append(
                        f"{name}: {field} moved {ref:g} -> {value:g} "
                        f"({rel:.2f}x, informational) at {dict(key)}")
    missing = set(base_rows) - seen
    for key in sorted(missing):
        failures.append(f"{name}: baseline row {dict(key)} missing from "
                        f"current run")
    return failures, notes


def update_baselines(args):
    produced = sorted(f for f in os.listdir(args.current_dir)
                      if f.startswith("BENCH_") and f.endswith(".json"))
    if args.names:
        produced = [f for f in produced
                    if any(name in f for name in args.names)]
    if not produced:
        print(f"--update: no matching BENCH_*.json under {args.current_dir}",
              file=sys.stderr)
        return 1
    os.makedirs(args.baseline_dir, exist_ok=True)
    for fname in produced:
        src = os.path.join(args.current_dir, fname)
        dst = os.path.join(args.baseline_dir, fname)
        # Validate before copying: a truncated or malformed run must not
        # become the committed truth.
        load(src)
        fresh = not os.path.exists(dst)
        with open(src, "rb") as f:
            payload = f.read()
        with open(dst, "wb") as f:
            f.write(payload)
        print(f"  updated: {dst}" + (" (new baseline)" if fresh else ""))
    print(f"--update: {len(produced)} baseline(s) regenerated; review and "
          f"commit the diff")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default="build")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative regression on gated metrics")
    parser.add_argument("--update", action="store_true",
                        help="regenerate baselines from the current run "
                             "instead of gating against them")
    parser.add_argument("names", nargs="*",
                        help="with --update: only benches whose file name "
                             "contains one of these substrings")
    args = parser.parse_args()

    if args.update:
        return update_baselines(args)
    if args.names:
        parser.error("bench name filters are only valid with --update")

    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}",
              file=sys.stderr)
        return 1

    all_failures = []
    for fname in baselines:
        base_path = os.path.join(args.baseline_dir, fname)
        cur_path = os.path.join(args.current_dir, fname)
        if not os.path.exists(cur_path):
            all_failures.append(f"{fname}: not produced by the current run "
                                f"(expected {cur_path})")
            continue
        failures, notes = check_series(fname, load(base_path),
                                       load(cur_path), args.tolerance)
        for note in notes:
            print(f"  note: {note}")
        if failures:
            all_failures.extend(failures)
        else:
            print(f"  ok: {fname} within {100 * args.tolerance:.0f}% on all "
                  f"gated metrics")

    if all_failures:
        print("\nPERF TRAJECTORY REGRESSIONS:", file=sys.stderr)
        for failure in all_failures:
            print(f"  FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf trajectory: all series within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
