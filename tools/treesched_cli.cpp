// treesched command-line tool: generate, inspect and solve scheduling
// problems from the shell.
//
//   treesched_cli gen-tree  <out.prob> [--n=64] [--r=2] [--m=50]
//                 [--shape=random|binary|path|star|caterpillar|broom]
//                 [--heights=unit|uniform|bimodal|narrow] [--seed=1]
//                 [--cap-spread=1] [--pmax=100]
//   treesched_cli gen-line  <out.line> [--slots=64] [--r=2] [--m=40]
//                 [--slack=2.0] [--heights=...] [--seed=1]
//   treesched_cli info      <file>
//   treesched_cli solve     <file> [--algo=auto|tree|line|seq|exact|
//                 nonuniform|protocol|online] [--eps=0.1] [--ps] [--seed=1]
//                 [--decomp=ideal|balancing|rootfix] [--out=sol.txt]
//                 [--trace=trace.json]
//                 [--transport=inproc|serialized|threaded]
//                 [--faults=drop=0.05,dup=0.02,corrupt=0.01,seed=1]
//                 [--arrivals=poisson|bursty|diurnal] [--rate=8]
//                 [--batches=16] [--interval=1.0] [--lifetime=8.0]
//                 [--init-pop=0] [--threads=1]
//                 [--journal=run.wal] [--snapshot-every=4] [--recover]
//                 [--crash=point=mid-append,batch=3,seed=7]
//
// --journal puts the online arm behind the durable service
// (online/durable_service.hpp): every batch is appended to the
// write-ahead journal before it is applied, and --snapshot-every=N adds
// a versioned snapshot of the full scheduler state every N batches.
// --recover restarts a crashed run from those files (newest valid
// snapshot + journal suffix; torn tails truncated) and resumes the same
// seeded trace where it left off.  --crash arms the deterministic
// crash-injection harness — the process exits 3 at the named point with
// whatever partial write a kill -9 would have left; unset, the
// TREESCHED_CRASH environment hook supplies the plan.
//
// --algo=online runs the incremental warm-start service (online/): the
// tree problem's demands become the resident population, a churn trace
// (--arrivals/--rate/--batches/--interval/--lifetime/--init-pop, sampled
// by --seed) is replayed batch by batch through the OnlineScheduler, and
// only the conflict components each batch touches are re-solved.  The
// run reports steady-state throughput (events and demands/sec sustained)
// plus the touched-component ratio, then the final assembled solution.
//
// Argument parsing (tools/cli_args.hpp, shared with tests/
// test_cli_args.cpp) is strict: malformed numbers (--eps=abc, --eps=0.5x),
// value flags given space-separated (--threads 4), unknown flags or enum
// names (--shape=binray) and stray positionals all exit 2 with a
// diagnostic naming the offending flag.
//
// --algo=protocol runs the matching theorem as the *message-level*
// protocol (dist/protocol_scheduler) instead of the modeled engine, and
// --transport picks its communication backend (dist/transport.hpp);
// unset, the TREESCHED_TRANSPORT environment hook decides.  On the
// serialized backends the reported bytes are real serialized sizes and
// the codec counters show every message crossing the wire format.
// --faults wraps the backend in the kFaulty recovery layer (see
// parse_fault_plan in dist/transport.hpp for the full key set) and
// prints the fault/retransmit/dedup/corruption counters plus the
// degraded flag after the run; unset, the TREESCHED_FAULTS environment
// hook decides.
//
// Files produced by gen-* are the versioned text formats of io/text_io;
// `solve` auto-detects tree vs line files by their header.  --trace
// enables the obs/ flight recorder for the solve and writes a Chrome
// trace (chrome://tracing / ui.perfetto.dev; summarize with
// tools/trace_report.py) — unavailable in TREESCHED_ENABLE_TRACING=OFF
// builds.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "capacity/nonuniform.hpp"
#include "cli_args.hpp"
#include "dist/scheduler.hpp"
#include "exact/branch_and_bound.hpp"
#include "io/text_io.hpp"
#include "obs/trace.hpp"
#include "online/durable_service.hpp"
#include "online/online_scheduler.hpp"
#include "seq/sequential.hpp"
#include "workload/scenario.hpp"

using namespace treesched;

namespace {

using cli::Args;
using cli::parse_arrivals;
using cli::parse_decomp;
using cli::parse_heights;
using cli::parse_shape;
using cli::UsageError;

bool is_line_file(const std::string& path) {
  std::ifstream is(path);
  std::string token;
  is >> token;
  return token == "treesched-line";
}

int cmd_gen_tree(const Args& args) {
  TreeScenarioSpec spec;
  spec.shape = parse_shape(args.get("shape", "random"));
  spec.num_vertices = static_cast<VertexId>(args.num("n", 64));
  spec.num_networks = static_cast<int>(args.num("r", 2));
  spec.demands.num_demands = static_cast<int>(args.num("m", 50));
  spec.demands.heights = parse_heights(args.get("heights", "unit"));
  spec.demands.profit_max = args.num("pmax", 100.0);
  spec.capacity_spread = args.num("cap-spread", 1.0);
  if (spec.capacity_spread > 1.0)
    spec.capacities = CapacityLaw::kPowerClasses;
  spec.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const Problem problem = make_tree_problem(spec);
  save_problem(args.file, problem);
  std::printf("wrote %s: %s (%d instances)\n", args.file.c_str(),
              describe(spec).c_str(), problem.num_instances());
  return 0;
}

int cmd_gen_line(const Args& args) {
  LineGenConfig cfg;
  cfg.num_slots = static_cast<int>(args.num("slots", 64));
  cfg.num_resources = static_cast<int>(args.num("r", 2));
  cfg.num_demands = static_cast<int>(args.num("m", 40));
  cfg.window_slack = args.num("slack", 2.0);
  cfg.max_proc_time = static_cast<int>(args.num("max-proc", 12));
  cfg.heights = parse_heights(args.get("heights", "unit"));
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 1)));
  const LineProblem line = make_random_line_problem(cfg, rng);
  std::ofstream os(args.file);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", args.file.c_str());
    return 1;
  }
  write_line_problem(os, line);
  std::printf("wrote %s: %d jobs over %d slots x %d resources\n",
              args.file.c_str(), line.num_demands(), line.num_slots(),
              line.num_resources());
  return 0;
}

int cmd_info(const Args& args) {
  if (is_line_file(args.file)) {
    std::ifstream is(args.file);
    const LineProblem line = read_line_problem(is);
    const Problem problem = line.lower();
    std::printf("line problem: %d slots, %d resources, %d jobs, "
                "%d placements\n", line.num_slots(), line.num_resources(),
                line.num_demands(), problem.num_instances());
    return 0;
  }
  const Problem problem = load_problem(args.file);
  std::printf("tree problem: n=%d, r=%d, m=%d, instances=%d\n",
              problem.num_vertices(), problem.num_networks(),
              problem.num_demands(), problem.num_instances());
  std::printf("profits [%g, %g], heights [%g, %g], capacities [%g, %g]\n",
              problem.min_profit(), problem.max_profit(),
              problem.min_height(), problem.max_height(),
              problem.min_capacity(), problem.max_capacity());
  std::printf("path lengths [%d, %d]; unit-height: %s; NBA: %s\n",
              problem.min_path_length(), problem.max_path_length(),
              problem.unit_height() ? "yes" : "no",
              satisfies_nba(problem) ? "yes" : "no");
  return 0;
}

void report(const Problem& problem, const Solution& solution, double bound,
            const SolveStats& stats, const Args& args) {
  const auto feas = check_feasibility(problem, solution);
  std::printf("feasible: %s\n", feas.feasible ? "yes" : "no");
  if (!feas.feasible)
    std::printf("violation: %s\n", feas.violation.c_str());
  std::printf("profit: %.3f  (selected %zu of %d demands)\n",
              solution.profit(problem), solution.size(),
              problem.num_demands());
  if (bound > 0.0)
    std::printf("proven approximation bound: %.2f\n", bound);
  if (stats.dual_upper_bound > 0.0)
    std::printf("certified OPT upper bound: %.3f (gap %.3f)\n",
                stats.dual_upper_bound,
                stats.dual_upper_bound /
                    std::max(solution.profit(problem), 1e-9));
  if (stats.comm_rounds > 0)
    std::printf("rounds: %lld (epochs %d, stages %d, steps %d)\n",
                static_cast<long long>(stats.comm_rounds), stats.epochs,
                stats.stages, stats.steps);
  if (!stats.mis_ok)
    std::printf("warning: MIS budget exhausted in %lld step(s) — the run "
                "degraded (mis_ok=false); quality certificates still hold "
                "but fewer instances were decided than the schedule "
                "planned for\n",
                static_cast<long long>(stats.mis_failed_steps));
  if (args.has("out")) {
    save_solution(args.get("out", ""), solution);
    std::printf("solution written to %s\n", args.get("out", "").c_str());
  }
  if (args.has("trace")) {
    const std::string path = args.get("trace", "trace.json");
    if (obs::write_chrome_trace(path))
      std::printf("trace written to %s (open in chrome://tracing or "
                  "ui.perfetto.dev; summarize with tools/trace_report.py)\n",
                  path.c_str());
    else
      std::fprintf(stderr, "warning: could not write trace to %s (tracing "
                           "compiled out, or path not writable)\n",
                   path.c_str());
  }
}

// The online service arm: replay a churn trace through the incremental
// scheduler and report sustained throughput, then the final solution.
// With --journal the replay runs behind the durable service (write-ahead
// journal + snapshots every --snapshot-every batches); --recover resumes
// a crashed run from those files and replays only the remaining suffix
// of the same seeded trace.  --crash arms the deterministic crash
// harness (exit 3, restartable with --recover) — unset, the
// TREESCHED_CRASH environment hook decides.
int cmd_solve_online(const Args& args, const Problem& problem) {
  OnlineTrafficSpec traffic;
  traffic.arrivals = parse_arrivals(args.get("arrivals", "poisson"));
  traffic.rate = args.num("rate", 8.0);
  traffic.num_batches = static_cast<int>(args.num("batches", 16));
  traffic.batch_interval = args.num("interval", 1.0);
  traffic.initial_population = static_cast<int>(args.num("init-pop", 0));
  traffic.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  TenantClass tenant;
  tenant.mean_lifetime = args.num("lifetime", 8.0);
  traffic.tenants.push_back(tenant);

  DemandGenConfig demand_cfg;
  demand_cfg.heights = parse_heights(args.get("heights", "unit"));
  demand_cfg.profit_max = args.num("pmax", 100.0);

  OnlineConfig cfg;
  cfg.solver.epsilon = args.num("eps", 0.1);
  cfg.solver.threads = static_cast<int>(args.num("threads", 1));
  cfg.decomp = parse_decomp(args.get("decomp", "ideal"));

  for (const char* needs_journal : {"snapshot-every", "crash"}) {
    if (args.has(needs_journal) && !args.has("journal"))
      throw UsageError(std::string("flag --") + needs_journal +
                       " requires --journal=PATH");
  }
  if (args.has("recover") && !args.has("journal"))
    throw UsageError("flag --recover requires --journal=PATH");

  const std::vector<EventBatch> trace =
      make_event_trace(problem, demand_cfg, traffic);

  // The durable arm: same trace, same scheduler, behind the journal.
  if (args.has("journal")) {
    DurabilityConfig dur;
    dur.journal_path = args.get("journal", "");
    dur.snapshot_every = static_cast<int>(args.num("snapshot-every", 0));
    if (args.has("crash")) dur.crash = parse_crash_plan(args.get("crash", ""));
    std::int64_t events = 0, solve_ns = 0;
    try {
      std::unique_ptr<DurableOnlineService> service;
      std::size_t resume_at = 0;
      if (args.has("recover")) {
        RecoveryReport rec;
        service = std::make_unique<DurableOnlineService>(
            DurableOnlineService::recover(problem, cfg, dur, &rec));
        resume_at = service->batches_applied();
        std::printf("recovered: %s%s\n", rec.note.c_str(),
                    rec.journal_torn ? " (torn journal tail truncated)"
                                     : "");
        std::printf("recovery: %u batches from snapshot + %u replayed from "
                    "journal; resuming at batch %zu of %zu\n",
                    rec.snapshot_batches, rec.replayed, resume_at,
                    trace.size());
        check_input(resume_at <= trace.size(),
                    "recover: journal is ahead of the configured trace "
                    "(different --batches/--seed than the crashed run?)");
      } else {
        service = std::make_unique<DurableOnlineService>(problem, cfg, dur);
      }
      for (std::size_t b = resume_at; b < trace.size(); ++b) {
        const OnlineBatchReport rep = service->step(trace[b]);
        events += rep.arrivals + rep.departures;
        solve_ns += rep.solve_ns;
      }
      const double seconds = static_cast<double>(solve_ns) / 1e9;
      std::printf("online (durable): %u batches applied, %lld events; "
                  "journal %lld bytes at %s\n",
                  service->batches_applied(),
                  static_cast<long long>(events),
                  static_cast<long long>(service->journal_bytes_written()),
                  dur.journal_path.c_str());
      if (seconds > 0.0)
        std::printf("throughput: %.0f events/sec sustained\n",
                    static_cast<double>(events) / seconds);
      const OnlineSolveArtifacts art = service->scheduler().assemble();
      std::printf("final population: %d live demands, lambda %.4f\n",
                  service->scheduler().live_demands(), art.lambda);
      report(service->scheduler().problem(), art.solution, 0.0, SolveStats{},
             args);
      return 0;
    } catch (const CrashInjected& crash) {
      std::fprintf(stderr,
                   "%s\nrestart with --recover to resume from the journal "
                   "and newest snapshot\n",
                   crash.what());
      return 3;
    }
  }

  OnlineScheduler scheduler(problem, cfg);
  std::int64_t events = 0, solve_ns = 0, touched = 0, total = 0;
  for (const EventBatch& batch : trace) {
    const OnlineBatchReport rep = scheduler.step(batch);
    events += rep.arrivals + rep.departures;
    solve_ns += rep.solve_ns;
    touched += rep.touched_components;
    total += rep.total_components;
  }
  const double seconds = static_cast<double>(solve_ns) / 1e9;
  std::printf("online: %d batches, %lld events over %d resident demands\n",
              scheduler.batches_applied(), static_cast<long long>(events),
              problem.num_demands());
  std::printf("throughput: %.0f events/sec sustained (%.3f ms/batch); "
              "touched %lld of %lld components (%.1f%%)\n",
              seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0,
              trace.empty() ? 0.0
                            : seconds * 1e3 /
                                  static_cast<double>(trace.size()),
              static_cast<long long>(touched),
              static_cast<long long>(total),
              total > 0 ? 100.0 * static_cast<double>(touched) /
                              static_cast<double>(total)
                        : 0.0);
  const OnlineSolveArtifacts art = scheduler.assemble();
  std::printf("final population: %d live demands, lambda %.4f\n",
              scheduler.live_demands(), art.lambda);
  report(scheduler.problem(), art.solution, 0.0, SolveStats{}, args);
  return 0;
}

int cmd_solve(const Args& args) {
  if (args.has("trace")) obs::enable_tracing();
  const bool line = is_line_file(args.file);
  Problem problem = [&] {
    if (line) {
      std::ifstream is(args.file);
      return read_line_problem(is).lower();
    }
    return load_problem(args.file);
  }();

  const std::string algo = args.get("algo", "auto");
  bool known_algo = false;
  for (const char* known : {"auto", "tree", "line", "seq", "exact",
                            "nonuniform", "protocol", "online"})
    known_algo = known_algo || algo == known;
  if (!known_algo)
    throw cli::bad_name("algo", algo,
                        "auto|tree|line|seq|exact|nonuniform|protocol|online");
  if (algo == "online") {
    if (line)
      throw UsageError("--algo=online requires a tree problem file");
    return cmd_solve_online(args, problem);
  }
  DistOptions options;
  options.epsilon = args.num("eps", 0.1);
  options.seed = static_cast<std::uint64_t>(args.num("seed", 1));
  options.decomp = parse_decomp(args.get("decomp", "ideal"));
  options.stage_mode = args.has("ps") ? StageMode::kSingleStagePS
                                      : StageMode::kMultiStage;

  if (algo == "exact") {
    const ExactResult exact = solve_exact(
        problem, static_cast<std::int64_t>(args.num("nodes", 2e7)));
    if (!exact.completed)
      std::printf("warning: node limit hit; result may be suboptimal\n");
    report(problem, exact.solution, 1.0, SolveStats{}, args);
    return 0;
  }
  if (algo == "seq") {
    const SeqResult r =
        line ? (problem.unit_height() ? solve_line_unit_sequential(problem)
                                      : solve_line_arbitrary_sequential(
                                            problem))
             : (problem.unit_height()
                    ? solve_tree_unit_sequential(problem)
                    : solve_tree_arbitrary_sequential(problem));
    report(problem, r.solution, r.ratio_bound, r.stats, args);
    return 0;
  }
  if (algo == "nonuniform") {
    NonuniformOptions nopts;
    nopts.dist = options;
    nopts.line = line;
    nopts.by_class = args.has("by-class");
    const NonuniformResult r =
        problem.unit_height() ? solve_nonuniform_unit(problem, nopts)
                              : solve_nonuniform_narrow(problem, nopts);
    report(problem, r.solution, r.ratio_bound, r.stats, args);
    return 0;
  }
  if (algo == "protocol") {
    ProtocolOptions popts;
    popts.epsilon = options.epsilon;
    popts.seed = options.seed;
    popts.transport = args.has("transport")
                          ? parse_transport_kind(args.get("transport", ""))
                          : TransportKind::kDefault;
    if (args.has("faults"))
      popts.faults = parse_fault_plan(args.get("faults", ""));
    const ProtocolDistResult r =
        line ? (problem.unit_height()
                    ? run_line_unit_protocol(problem, popts)
                    : run_line_arbitrary_protocol(problem, popts))
             : (problem.unit_height()
                    ? run_tree_unit_protocol(problem, popts, options.decomp)
                    : run_tree_arbitrary_protocol(problem, popts,
                                                  options.decomp));
    std::printf("transport: %s\n", to_string(r.run.transport));
    std::printf("rounds: %lld  messages: %lld  bytes: %lld "
                "(discovery: %lld/%lld/%lld)\n",
                static_cast<long long>(r.run.rounds),
                static_cast<long long>(r.run.messages),
                static_cast<long long>(r.run.bytes),
                static_cast<long long>(r.run.discovery_rounds),
                static_cast<long long>(r.run.discovery_messages),
                static_cast<long long>(r.run.discovery_bytes));
    if (r.run.codec_encoded > 0)
      std::printf("codec: %lld encoded, %lld decoded (serialized wire)\n",
                  static_cast<long long>(r.run.codec_encoded),
                  static_cast<long long>(r.run.codec_decoded));
    if (r.run.transport == TransportKind::kFaulty) {
      const FaultStats& f = r.run.fault;
      std::printf("faults: %lld posted, %lld delivered, %lld lost "
                  "(drop %lld, dup %lld, corrupt %lld, delay %lld, "
                  "reorder %lld)\n",
                  static_cast<long long>(f.frames_posted),
                  static_cast<long long>(f.frames_delivered),
                  static_cast<long long>(f.frames_lost),
                  static_cast<long long>(f.frames_dropped),
                  static_cast<long long>(f.frames_duplicated),
                  static_cast<long long>(f.frames_corrupted),
                  static_cast<long long>(f.frames_delayed),
                  static_cast<long long>(f.frames_reordered));
      std::printf("recovery: %lld retransmits, %lld deduped, %lld "
                  "crc-rejected, %lld undetected; mis retries %lld\n",
                  static_cast<long long>(f.retransmits),
                  static_cast<long long>(f.dup_dropped),
                  static_cast<long long>(f.corrupt_dropped),
                  static_cast<long long>(f.corrupt_undetected),
                  static_cast<long long>(r.run.mis_retries));
      std::printf("degraded: %s  certificate_ok: %s\n",
                  r.run.degraded ? "yes" : "no",
                  r.run.certificate_ok ? "yes" : "no");
    }
    report(problem, r.run.solution, r.ratio_bound, SolveStats{}, args);
    return 0;
  }
  // auto / tree / line: the matching distributed theorem.
  const DistResult r =
      line ? (problem.unit_height()
                  ? solve_line_unit_distributed(problem, options)
                  : solve_line_arbitrary_distributed(problem, options))
           : (problem.unit_height()
                  ? solve_tree_unit_distributed(problem, options)
                  : solve_tree_arbitrary_distributed(problem, options));
  report(problem, r.solution, r.ratio_bound, r.stats, args);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: treesched_cli <gen-tree|gen-line|info|solve> <file> "
               "[--flags]\n  see the header of tools/treesched_cli.cpp\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = cli::parse(argc, argv);
    if (args.command.empty() || args.file.empty()) return usage();
    if (args.command == "gen-tree") return cmd_gen_tree(args);
    if (args.command == "gen-line") return cmd_gen_line(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "solve") return cmd_solve(args);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
