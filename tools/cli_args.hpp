// Argument parsing shared by tools/treesched_cli.cpp and
// tests/test_cli_args.cpp.
//
// The contract, enforced with UsageError (caught by the CLI's main,
// which prints the diagnostic plus usage and exits nonzero):
//  * numeric flag values are parsed strictly — `--eps=abc` and trailing
//    garbage like `--eps=0.5x` are rejected with the offending flag and
//    value named, never std::stod's uncaught std::invalid_argument;
//  * every known flag is registered as value-taking or boolean.  A
//    value flag given space-separated (`--threads 4`) is rejected with
//    the `--threads=4` spelling suggested, instead of silently
//    recording threads="1" and treating `4` as the input file;
//  * unknown flags and unexpected positional arguments are errors;
//  * enum-valued flags (--shape, --heights, --decomp, --arrivals)
//    reject unknown names, listing the valid ones, instead of silently
//    falling back to a default (`--shape=binray` used to mean random).
#pragma once

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "decomp/tree_decomposition.hpp"
#include "online/event_stream.hpp"
#include "workload/demand_gen.hpp"
#include "workload/tree_gen.hpp"

namespace treesched::cli {

// A malformed command line.  what() is the user-facing diagnostic.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

// Flags that take a value (--flag=V).  Giving one bare is an error —
// the pre-registry parser would have recorded "1" and misread the
// space-separated value as a positional.
inline const std::vector<std::string>& value_flags() {
  static const std::vector<std::string> kFlags = {
      // gen-tree / gen-line
      "n", "r", "m", "shape", "heights", "seed", "cap-spread", "pmax",
      "slots", "slack", "max-proc",
      // solve
      "algo", "eps", "decomp", "out", "trace", "transport", "faults",
      "nodes", "threads",
      // solve --algo=online
      "arrivals", "rate", "batches", "interval", "lifetime", "init-pop",
      // solve --algo=online durability (online/durable_service.hpp)
      "journal", "snapshot-every", "crash",
  };
  return kFlags;
}

// Flags that are pure switches (--flag, no value).
inline const std::vector<std::string>& bool_flags() {
  static const std::vector<std::string> kFlags = {"ps", "by-class",
                                                  "recover"};
  return kFlags;
}

struct Args {
  std::string command;
  std::string file;
  std::map<std::string, std::string> flags;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  // Strict numeric lookup: the whole value must parse as a number.
  double num(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const std::string& value = it->second;
    const char* begin = value.c_str();
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    if (value.empty() || end != begin + value.size())
      throw UsageError("flag --" + key + ": invalid number '" + value + "'");
    return parsed;
  }
  bool has(const std::string& key) const { return flags.contains(key); }
};

inline bool contains(const std::vector<std::string>& names,
                     const std::string& name) {
  for (const std::string& known : names)
    if (known == name) return true;
  return false;
}

inline Args parse(int argc, const char* const* argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const auto eq = token.find('=');
      const std::string name =
          eq == std::string::npos ? token.substr(2) : token.substr(2, eq - 2);
      if (contains(value_flags(), name)) {
        if (eq == std::string::npos) {
          std::string hint = "--" + name + "=V";
          if (i + 1 < argc) hint = "--" + name + "=" + argv[i + 1];
          throw UsageError("flag --" + name + " requires a value (" + hint +
                           ")");
        }
        args.flags[name] = token.substr(eq + 1);
      } else if (contains(bool_flags(), name)) {
        if (eq != std::string::npos)
          throw UsageError("flag --" + name + " takes no value");
        args.flags[name] = "1";
      } else {
        throw UsageError("unknown flag --" + name);
      }
    } else if (args.file.empty()) {
      args.file = token;
    } else {
      throw UsageError("unexpected argument '" + token + "' (file is '" +
                       args.file + "')");
    }
  }
  return args;
}

// argv convenience for tests.
inline Args parse(const std::vector<std::string>& argv) {
  std::vector<const char*> ptrs;
  ptrs.reserve(argv.size());
  for (const std::string& s : argv) ptrs.push_back(s.c_str());
  return parse(static_cast<int>(ptrs.size()), ptrs.data());
}

inline UsageError bad_name(const std::string& flag, const std::string& name,
                           const std::string& valid) {
  return UsageError("flag --" + flag + ": unknown name '" + name +
                    "' (valid: " + valid + ")");
}

inline TreeShape parse_shape(const std::string& name) {
  if (name == "random") return TreeShape::kRandomAttachment;
  if (name == "binary") return TreeShape::kBinary;
  if (name == "path") return TreeShape::kPath;
  if (name == "star") return TreeShape::kStar;
  if (name == "caterpillar") return TreeShape::kCaterpillar;
  if (name == "broom") return TreeShape::kBroom;
  throw bad_name("shape", name,
                 "random|binary|path|star|caterpillar|broom");
}

inline HeightLaw parse_heights(const std::string& name) {
  if (name == "unit") return HeightLaw::kUnit;
  if (name == "uniform") return HeightLaw::kUniformRange;
  if (name == "bimodal") return HeightLaw::kBimodal;
  if (name == "narrow") return HeightLaw::kNarrowOnly;
  throw bad_name("heights", name, "unit|uniform|bimodal|narrow");
}

inline DecompKind parse_decomp(const std::string& name) {
  if (name == "ideal") return DecompKind::kIdeal;
  if (name == "balancing") return DecompKind::kBalancing;
  if (name == "rootfix") return DecompKind::kRootFixing;
  throw bad_name("decomp", name, "ideal|balancing|rootfix");
}

inline ArrivalLaw parse_arrivals(const std::string& name) {
  if (name == "poisson") return ArrivalLaw::kPoisson;
  if (name == "bursty") return ArrivalLaw::kBursty;
  if (name == "diurnal") return ArrivalLaw::kDiurnal;
  throw bad_name("arrivals", name, "poisson|bursty|diurnal");
}

}  // namespace treesched::cli
