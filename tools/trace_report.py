#!/usr/bin/env python3
"""Summarize a flight-recorder Chrome trace (src/obs/) into a terminal report.

Reads the JSON written by obs::write_chrome_trace (--trace=PATH on the
CLI and the benches), and prints:

  * per-worker utilization — busy (union of that thread's spans), idle
    (analysis window minus busy), and busy share of the window;
  * a phase table — per (category, name): span count, total time, and
    *exclusive* self time (total minus time covered by nested spans on
    the same thread), sorted by self time;
  * the critical-path phase — the top self-time phase on the main
    thread, i.e. where the wall clock actually went after subtracting
    the work that was delegated to nested spans;
  * the registry metrics embedded in otherData (counters + histogram
    summaries), when present.

The analysis window is the engine/run span when one exists (so process
startup and JSON dumping do not dilute utilization), otherwise the full
extent of the recorded spans.

Usage: tools/trace_report.py trace.json [--top N]
"""

import argparse
import json
import sys
from collections import defaultdict


def load_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):  # bare event-array form
        return doc, {}
    return doc.get("traceEvents", []), doc.get("otherData", {})


def union_length(intervals):
    """Total length covered by a set of [start, end) intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start >= last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def self_times(spans):
    """Exclusive time per span via the sorted-stack nesting walk.

    RAII spans on one thread nest perfectly; sorting by (start,
    -duration) visits parents before their children, and a span's self
    time is its duration minus the durations of its direct children.
    After-the-fact spans (wire/round deltas) can straddle the RAII
    boundaries, so the stack pops everything that cannot fully *contain*
    the incoming span — a straddler becomes a sibling, never a bogus
    parent.
    """
    per_tid = defaultdict(list)
    for s in spans:
        per_tid[s["tid"]].append(s)
    for tid_spans in per_tid.values():
        tid_spans.sort(key=lambda s: (s["ts"], -s["dur"]))
        stack = []
        for s in tid_spans:
            end = s["ts"] + s["dur"]
            while stack and end > stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            s["child_dur"] = 0.0
            if stack:
                stack[-1]["child_dur"] += s["dur"]
            stack.append(s)
    for s in spans:
        s["self_dur"] = max(0.0, s["dur"] - s.get("child_dur", 0.0))


def fmt_ms(us):
    return f"{us / 1000.0:.3f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON from --trace=PATH")
    parser.add_argument("--top", type=int, default=12,
                        help="phase rows to print (default 12)")
    args = parser.parse_args()

    events, other = load_trace(args.trace)
    thread_names = {}
    spans = []
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            thread_names[ev.get("tid", 0)] = ev["args"]["name"]
        elif ev.get("ph") == "X":
            spans.append({"cat": ev.get("cat", "?"), "name": ev["name"],
                          "ts": float(ev["ts"]), "dur": float(ev["dur"]),
                          "tid": int(ev.get("tid", 0))})
    if not spans:
        print(f"{args.trace}: no complete ('X') spans — was tracing "
              f"enabled (runtime gate) and compiled in?", file=sys.stderr)
        return 1

    # Analysis window: the engine/run umbrella when present.
    run_spans = [s for s in spans
                 if s["cat"] == "engine" and s["name"] == "run"]
    if run_spans:
        outer = max(run_spans, key=lambda s: s["dur"])
        window = (outer["ts"], outer["ts"] + outer["dur"])
        window_label = "engine/run span"
    else:
        window = (min(s["ts"] for s in spans),
                  max(s["ts"] + s["dur"] for s in spans))
        window_label = "full trace extent"
    window_us = max(window[1] - window[0], 1e-9)

    self_times(spans)

    print(f"trace: {args.trace}")
    print(f"spans: {len(spans)} across {len(set(s['tid'] for s in spans))} "
          f"thread(s); window = {fmt_ms(window_us)} ms ({window_label})")
    if other:
        kept = other.get("span_count")
        lost = other.get("overwritten_spans")
        if kept is not None:
            print(f"recorder: {kept} span(s) retained, "
                  f"{lost or 0} overwritten (ring wrap)")
    print()

    # --- per-worker utilization -----------------------------------------
    print("worker utilization (busy = union of spans inside the window):")
    print(f"  {'thread':<12} {'busy(ms)':>10} {'idle(ms)':>10} {'busy%':>7}")
    for tid in sorted(set(s["tid"] for s in spans)):
        intervals = []
        for s in spans:
            if s["tid"] != tid:
                continue
            start = max(s["ts"], window[0])
            end = min(s["ts"] + s["dur"], window[1])
            if end > start:
                intervals.append((start, end))
        busy = union_length(intervals)
        idle = max(0.0, window_us - busy)
        name = thread_names.get(tid, f"tid-{tid}")
        print(f"  {name:<12} {fmt_ms(busy):>10} {fmt_ms(idle):>10} "
              f"{100.0 * busy / window_us:>6.1f}%")
    print()

    # --- phase table -----------------------------------------------------
    agg = defaultdict(lambda: {"count": 0, "total": 0.0, "self": 0.0})
    for s in spans:
        key = f"{s['cat']}/{s['name']}"
        agg[key]["count"] += 1
        agg[key]["total"] += s["dur"]
        agg[key]["self"] += s["self_dur"]
    ranked = sorted(agg.items(), key=lambda kv: -kv[1]["self"])
    print(f"phases by exclusive self time (top {min(args.top, len(ranked))}):")
    print(f"  {'phase':<24} {'count':>7} {'total(ms)':>11} {'self(ms)':>10} "
          f"{'self%':>7}")
    for key, a in ranked[:args.top]:
        print(f"  {key:<24} {a['count']:>7} {fmt_ms(a['total']):>11} "
              f"{fmt_ms(a['self']):>10} "
              f"{100.0 * a['self'] / window_us:>6.1f}%")
    print()

    # --- critical path ----------------------------------------------------
    # Worker spans overlap each other; the main thread's exclusive time is
    # the serial wall clock.  The top self-time phase there is the phase a
    # perf effort should attack first.
    main_agg = defaultdict(float)
    for s in spans:
        if s["tid"] == 0:
            main_agg[f"{s['cat']}/{s['name']}"] += s["self_dur"]
    if main_agg:
        top_phase, top_self = max(main_agg.items(), key=lambda kv: kv[1])
        print(f"critical-path phase (top self time on main thread): "
              f"{top_phase} — {fmt_ms(top_self)} ms "
              f"({100.0 * top_self / window_us:.1f}% of window)")
    else:
        print("critical-path phase: no main-thread spans in this trace")

    # --- registry metrics -------------------------------------------------
    metrics = other.get("metrics") if isinstance(other, dict) else None
    if metrics:
        counters = metrics.get("counters", {})
        if counters:
            print("\ncounters:")
            for name in sorted(counters):
                print(f"  {name:<32} {counters[name]}")
        hists = metrics.get("histograms", {})
        if hists:
            print("\nhistograms:")
            print(f"  {'name':<28} {'count':>8} {'sum':>12} {'min':>8} "
                  f"{'p50':>8} {'p95':>8} {'max':>8}")
            for name in sorted(hists):
                h = hists[name]
                print(f"  {name:<28} {h['count']:>8} {h['sum']:>12} "
                      f"{h['min']:>8} {h['p50']:>8} {h['p95']:>8} "
                      f"{h['max']:>8}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # report piped into head/less and truncated
        sys.exit(0)
