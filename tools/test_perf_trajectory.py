#!/usr/bin/env python3
"""Unit tests for the perf-trajectory key classifier (tools/perf_trajectory.py).

The classifier decides whether a bench JSON field gates the perf
trajectory, is reported informationally, or keys the row join.  A wrong
classification either silently un-gates a complexity metric or re-keys a
whole series, so the mapping is pinned here; registered as the
`test_perf_key_classifier` ctest.
"""

import importlib.util
import os
import unittest

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "perf_trajectory", os.path.join(_TOOLS_DIR, "perf_trajectory.py"))
perf_trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_trajectory)

classify = perf_trajectory.classify
row_key = perf_trajectory.row_key


class ClassifyTest(unittest.TestCase):
    def test_complexity_counters_gate(self):
        for field in ("rounds", "steps", "epochs", "raises", "ratio",
                      "protocol_rounds", "modeled_rounds",
                      "protocol_messages", "protocol_bytes",
                      "discovery_bytes", "discovery_reply_bytes",
                      "protocol_ratio", "cert_gap"):
            self.assertEqual(classify(field), "gated", field)

    def test_timing_is_informational(self):
        for field in ("wall_ms", "steps_per_sec", "profit", "speedup",
                      "epoch_setup_ns", "forest_build_ns", "merge_ns",
                      "setup_speedup"):
            self.assertEqual(classify(field), "info", field)

    def test_obs_exports_are_informational_never_gating(self):
        # The flight recorder's keys are diagnostics even when their
        # suffix looks gated: the prefix rule must win.
        for field in ("trace_rounds", "trace_total_bytes", "trace_spans",
                      "hist_message_bytes", "hist_component_size_p95",
                      "obs_span_count", "obs_overwritten_spans",
                      "trace_worker_busy_ns", "hist_luby_iterations_p50"):
            self.assertEqual(classify(field), "info", field)

    def test_durability_diagnostics_are_informational_never_gating(self):
        # The t8 recovery bench's snapshot_*/recovery_* fields are
        # diagnostics (replay counts vary with the snapshot cursor; the
        # rest is wall clock or image size) — the prefix rule must win
        # even over gated-looking suffixes.  journal_bytes is the one
        # durability metric that gates.
        for field in ("recovery_replayed_with_snapshot",
                      "recovery_replayed_journal_only",
                      "recovery_with_snapshot_ms", "snapshot_bytes",
                      "snapshot_write_ms", "snapshot_batches"):
            self.assertEqual(classify(field), "info", field)
        self.assertEqual(classify("journal_bytes"), "gated")

    def test_identity_fields_are_keys(self):
        for field in ("seed", "arm", "workload", "n", "instances",
                      "lockstep", "engine", "threads", "forest"):
            self.assertEqual(classify(field), "key", field)

    def test_ok_flags_stay_join_keys(self):
        # Deliberate: a mis_ok/schedule_ok flip must re-key the row and
        # fail the gate loudly instead of hiding inside a tolerance.
        for field in ("mis_ok", "schedule_ok"):
            self.assertEqual(classify(field), "key", field)


class RowKeyTest(unittest.TestCase):
    def test_row_key_uses_only_key_fields(self):
        row = {"seed": 3, "arm": 1.0, "rounds": 120, "wall_ms": 8.5,
               "trace_rounds": 7, "mis_ok": 1}
        key = dict(row_key(row))
        self.assertEqual(key, {"seed": 3, "arm": 1.0, "mis_ok": 1})

    def test_reordered_rows_share_a_key(self):
        a = {"seed": 1, "arm": 0.0, "rounds": 10}
        b = {"arm": 0.0, "rounds": 99, "seed": 1}
        self.assertEqual(row_key(a), row_key(b))

    def test_flag_flip_changes_the_key(self):
        ok = {"seed": 1, "mis_ok": 1, "rounds": 10}
        degraded = {"seed": 1, "mis_ok": 0, "rounds": 10}
        self.assertNotEqual(row_key(ok), row_key(degraded))


if __name__ == "__main__":
    unittest.main()
